package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies one flight-recorder event. The taxonomy covers
// the solver-internal state transitions that matter when diagnosing a
// stuck or pathological solve: CDCL restarts and clause-database
// maintenance, MaxSAT bound movement, and session-cache activity. See
// docs/OBSERVABILITY.md for the per-kind payload meanings.
type EventKind uint8

// Flight-recorder event kinds.
const (
	// EvNone is the zero kind; never recorded.
	EvNone EventKind = iota
	// EvRestart is a CDCL restart: A = cumulative restarts, B =
	// cumulative conflicts at restart time.
	EvRestart
	// EvReduceDB is a learned-clause database reduction: A = learned
	// clauses before the pass, B = clauses deleted by it.
	EvReduceDB
	// EvArenaGC is a compacting clause-arena collection: A = slab bytes
	// before, B = slab bytes after.
	EvArenaGC
	// EvBoundTighten is a MaxSAT bound improvement: A = new best cost
	// (violated soft weight), B = search iterations so far.
	EvBoundTighten
	// EvCoreRelaxed is a core-guided MaxSAT round: A = core size, B =
	// minimum weight relaxed.
	EvCoreRelaxed
	// EvCacheHit is a session destination served from the solve cache.
	EvCacheHit
	// EvCacheMiss is a session destination that had to be solved.
	EvCacheMiss
	// EvCacheInvalidate is a cached destination whose fingerprint
	// changed.
	EvCacheInvalidate
	// EvSolveStart marks the start of one per-destination solve.
	EvSolveStart
	// EvSolveEnd marks the end of one per-destination solve: A = 1 when
	// sat, 0 otherwise, B = duration in milliseconds.
	EvSolveEnd
	// EvIncident marks a slow-solve watchdog firing: A = threshold in
	// milliseconds.
	EvIncident
	// EvRebind marks a session re-solving a destination by flipping the
	// live instance's retractable bindings instead of re-encoding:
	// A = bindings swapped, B = re-solve duration in milliseconds.
	EvRebind
	// EvShareImport marks a portfolio worker integrating clauses learned
	// by its siblings at a restart boundary: A = clauses imported in the
	// drain, B = shared clauses missed because the ring lapped the
	// worker's cursor.
	EvShareImport
	evKindCount
)

var eventKindNames = [evKindCount]string{
	EvNone:            "none",
	EvRestart:         "restart",
	EvReduceDB:        "reduce_db",
	EvArenaGC:         "arena_gc",
	EvBoundTighten:    "bound_tighten",
	EvCoreRelaxed:     "core_relaxed",
	EvCacheHit:        "cache_hit",
	EvCacheMiss:       "cache_miss",
	EvCacheInvalidate: "cache_invalidate",
	EvSolveStart:      "solve_start",
	EvSolveEnd:        "solve_end",
	EvIncident:        "incident",
	EvRebind:          "rebind",
	EvShareImport:     "share_import",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Recorder is a fixed-capacity flight recorder of timestamped solver
// events: a ring buffer in struct-of-arrays layout (parallel kind/
// time/payload columns, mebo-style) so that recording at steady state
// touches only preallocated slabs and allocates nothing (pinned by
// TestRecorderZeroAlloc / BenchmarkRecorderRecord). A nil *Recorder is
// a valid no-op recorder, mirroring the rest of the obs API.
//
// Recorder is safe for concurrent use: the parallel per-destination
// solver workers record into one shared ring. The append path takes
// one short mutex-protected critical section (a handful of slot
// stores); there is no per-event allocation or channel traffic.
type Recorder struct {
	mu sync.Mutex
	// Parallel columns; all have length == capacity after New.
	kinds  []EventKind
	times  []int64 // nanoseconds since the epoch field
	as     []int64
	bs     []int64
	labels []string
	reqs   []string // request IDs (see RecordRequest); "" = unattributed
	seq    uint64   // total events ever recorded; next write goes to seq % cap
	epoch  time.Time

	// dropped, when non-nil, is a registry counter bumped every time an
	// unread event is overwritten (wired by Registry.SetFlightRecorder as
	// "recorder.dropped"). Counter.Add is an atomic add, so the hot path
	// stays allocation-free.
	dropped *Counter
}

// DefaultRecorderCapacity is the ring size used when a non-positive
// capacity is requested.
const DefaultRecorderCapacity = 4096

// NewRecorder returns a flight recorder holding the last capacity
// events (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		kinds:  make([]EventKind, capacity),
		times:  make([]int64, capacity),
		as:     make([]int64, capacity),
		bs:     make([]int64, capacity),
		labels: make([]string, capacity),
		reqs:   make([]string, capacity),
		epoch:  time.Now(),
	}
}

// Record appends an unlabeled event. Allocation-free.
func (r *Recorder) Record(kind EventKind, a, b int64) {
	r.RecordLabeled(kind, "", a, b)
}

// RecordLabeled appends an event with a label (e.g. a destination
// prefix). The label string itself is stored by reference; passing an
// already-materialized string keeps the append path allocation-free.
func (r *Recorder) RecordLabeled(kind EventKind, label string, a, b int64) {
	r.RecordRequest(kind, label, "", a, b)
}

// RecordRequest appends a labeled event attributed to a request ID
// (the value WithRequest carries; "" records unattributed, identical to
// RecordLabeled). Like the label, the ID is stored by reference, so the
// append path stays allocation-free.
func (r *Recorder) RecordRequest(kind EventKind, label, req string, a, b int64) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if r.seq >= uint64(len(r.kinds)) {
		r.dropped.Add(1)
	}
	i := r.seq % uint64(len(r.kinds))
	r.kinds[i] = kind
	r.times[i] = now.Sub(r.epoch).Nanoseconds()
	r.as[i] = a
	r.bs[i] = b
	r.labels[i] = label
	r.reqs[i] = req
	r.seq++
	r.mu.Unlock()
}

// RecorderEvent is one drained flight-recorder event in plain-struct
// form (the array-of-structs view handed to sinks and the debug
// endpoint).
type RecorderEvent struct {
	// Seq is the event's global sequence number (0-based, monotone).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock time the event was recorded.
	Time time.Time `json:"time"`
	// Kind is the event kind name (see EventKind).
	Kind string `json:"kind"`
	// Label is the optional event label (destination prefix etc.).
	Label string `json:"label,omitempty"`
	// Req is the request ID the event is attributed to (RecordRequest);
	// empty for unattributed events.
	Req string `json:"req,omitempty"`
	// A and B are the kind-specific payloads.
	A int64 `json:"a"`
	B int64 `json:"b"`
}

// Events returns the retained events, oldest first. Safe to call while
// workers are still recording.
func (r *Recorder) Events() []RecorderEvent {
	if r == nil {
		return nil
	}
	out, _ := r.EventsSinceAppend(0, make([]RecorderEvent, 0, r.Len()))
	return out
}

// EventsAppend appends the retained events to dst, oldest first, and
// returns the extended slice. Allocation-free when dst has capacity —
// the snapshot variant for periodic pollers (pinned by
// BenchmarkRecorderEventsAppend).
func (r *Recorder) EventsAppend(dst []RecorderEvent) []RecorderEvent {
	dst, _ = r.EventsSinceAppend(0, dst)
	return dst
}

// EventsSinceAppend appends the retained events with Seq >= min to
// dst, oldest first, and returns the extended slice plus the next
// sequence number (one past the newest retained event; pass it back as
// min to drain incrementally). Events older than min that have already
// been overwritten are silently gone — Dropped() and the
// recorder.dropped counter account for them. Allocation-free when dst
// has capacity.
func (r *Recorder) EventsSinceAppend(min uint64, dst []RecorderEvent) ([]RecorderEvent, uint64) {
	if r == nil {
		return dst, min
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	capacity := uint64(len(r.kinds))
	n := r.seq
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	if min > start {
		start = min
	}
	for s := start; s < n; s++ {
		i := s % capacity
		dst = append(dst, RecorderEvent{
			Seq:   s,
			Time:  r.epoch.Add(time.Duration(r.times[i])),
			Kind:  r.kinds[i].String(),
			Label: r.labels[i],
			Req:   r.reqs[i],
			A:     r.as[i],
			B:     r.bs[i],
		})
	}
	return dst, n
}

// Len returns the number of currently retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq > uint64(len(r.kinds)) {
		return len(r.kinds)
	}
	return int(r.seq)
}

// Dropped returns how many events have been overwritten by newer ones.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq > uint64(len(r.kinds)) {
		return r.seq - uint64(len(r.kinds))
	}
	return 0
}

// Cap returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.kinds)
}

// recorderRef is the shared attachment point: the registry travels
// through every layer of the pipeline (smt.Context.Observe, the encode
// instances, the session engine), so hanging the recorder off it lets
// each layer find the ring without new plumbing.
type recorderRef struct {
	rec atomic.Pointer[Recorder]
}

// SetFlightRecorder attaches rec to the registry (nil detaches). Any
// layer holding the registry can then feed the ring. Attaching also
// wires the registry's "recorder.dropped" counter into the ring, so
// overwritten events are visible in /metrics and exported traces.
func (r *Registry) SetFlightRecorder(rec *Recorder) {
	if r == nil {
		return
	}
	if rec != nil {
		rec.setDroppedCounter(r.Counter("recorder.dropped"))
	}
	r.recorder.rec.Store(rec)
}

// setDroppedCounter wires the overwrite-accounting counter.
func (r *Recorder) setDroppedCounter(c *Counter) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dropped = c
	r.mu.Unlock()
}

// FlightRecorder returns the attached recorder, or nil (a valid no-op
// recorder) when none is attached or the registry is nil.
func (r *Registry) FlightRecorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.recorder.rec.Load()
}

// SetRecorder attaches a flight recorder to the tracer's registry.
func (t *Tracer) SetRecorder(rec *Recorder) {
	if t == nil {
		return
	}
	t.metrics.SetFlightRecorder(rec)
}

// Recorder returns the tracer's attached flight recorder (nil, a valid
// no-op recorder, when unset or for a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.metrics.FlightRecorder()
}
