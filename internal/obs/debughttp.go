package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// DebugMux builds the live-observability HTTP handler for a running
// process (aed -debug-addr / aedbench -debug-addr):
//
//	GET /metrics      registry snapshot as JSON (counters, gauges,
//	                  histograms with mean + p50/p95/p99)
//	GET /spans        span tree as JSON: finished spans plus in-flight
//	                  ones (open=true, elapsed-so-far durations)
//	GET /recorder     flight-recorder drain (oldest first) + drop count;
//	                  ?format=aedt downloads it as an AEDT binary stream
//	GET /debug/pprof/ stdlib profiling (CPU/heap of the CDCL hot path)
//
// Every route is safe to hit during a live solve: snapshots are taken
// through the same race-free paths the sinks use.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("aed debug endpoint\n\n/metrics\n/spans\n/recorder\n/debug/pprof/\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, metricsPayload(t))
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, spansPayload(t))
	})
	mux.HandleFunc("/recorder", func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "json":
			writeJSON(w, recorderPayload(t.Recorder()))
		case "aedt":
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="recorder.aedt"`)
			if err := (BinarySink{}).WriteRecorder(w, t.Recorder()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format "+format+" (want json or aedt)", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HistogramJSON is the /metrics wire form of one histogram: the raw
// buckets plus the derived statistics a dashboard wants directly.
type HistogramJSON struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// Exemplars, parallel to Counts, maps each bucket to the last
	// request ID observed into it (see Histogram.ObserveExemplar);
	// omitted for histograms never fed an exemplar.
	Exemplars []string `json:"exemplars,omitempty"`
}

// MetricsJSON is the /metrics response body.
type MetricsJSON struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]GaugeSnapshot `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
}

func metricsPayload(t *Tracer) MetricsJSON {
	snap := t.Metrics().Snapshot()
	out := MetricsJSON{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]HistogramJSON, len(snap.Histograms)),
	}
	if out.Counters == nil {
		out.Counters = map[string]int64{}
	}
	if out.Gauges == nil {
		out.Gauges = map[string]GaugeSnapshot{}
	}
	for name, h := range snap.Histograms {
		out.Histograms[name] = HistogramJSON{
			Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Bounds: h.Bounds, Counts: h.Counts, Exemplars: h.Exemplars,
		}
	}
	return out
}

// SpansJSON is the /spans response body: every recorded span plus the
// in-flight ones, in one list (open spans carry open=true and
// elapsed-so-far durations), ready for tree reconstruction by parent
// IDs — the same shape aedtrace consumes offline.
type SpansJSON struct {
	EpochUS int64   `json:"epoch_us"` // tracer epoch, µs since Unix epoch
	Spans   []Event `json:"spans"`
}

func spansPayload(t *Tracer) SpansJSON {
	out := SpansJSON{EpochUS: t.Epoch().UnixMicro(), Spans: []Event{}}
	for _, sp := range t.Spans() {
		out.Spans = append(out.Spans, spanEvent(sp, t.Epoch()))
	}
	for _, sp := range t.OpenSpans() {
		out.Spans = append(out.Spans, spanEvent(sp, t.Epoch()))
	}
	return out
}

// RecorderJSON is the /recorder response body.
type RecorderJSON struct {
	Capacity int             `json:"capacity"`
	Dropped  uint64          `json:"dropped"`
	Events   []RecorderEvent `json:"events"`
}

func recorderPayload(rec *Recorder) RecorderJSON {
	out := RecorderJSON{Capacity: rec.Cap(), Dropped: rec.Dropped(), Events: rec.Events()}
	if out.Events == nil {
		out.Events = []RecorderEvent{}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// NewCLITracer returns the standard telemetry root a long-running
// consumer (aed, aedbench, aedd) starts with: an enabled tracer with a
// default-capacity flight recorder attached.
func NewCLITracer() *Tracer {
	t := NewTracer()
	t.SetRecorder(NewRecorder(DefaultRecorderCapacity))
	return t
}

// ServeDebugCLI is the shared -debug-addr wiring of the CLIs: it
// starts the debug endpoint on addr, announces the bound address and
// route list on stderr prefixed with the program name, and returns the
// shutdown function. cmd/aed, cmd/aedbench, and cmd/aedd all use it so
// the flag behaves identically everywhere.
func ServeDebugCLI(app, addr string, t *Tracer) (func() error, error) {
	bound, closeFn, err := ServeDebug(addr, t)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s (/metrics /spans /recorder /debug/pprof/)\n", app, bound)
	return closeFn, nil
}

// ServeDebug starts the debug endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0") and a
// shutdown function. The server lives until close is called or the
// process exits; handler errors never affect the solve.
func ServeDebug(addr string, t *Tracer) (boundAddr string, close func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux(t), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
