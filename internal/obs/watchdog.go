package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog flags slow solves without aborting them: Watch arms a
// per-solve deadline, and when a solve outlives it the watchdog
// snapshots the live telemetry — open spans, the metrics registry, and
// the flight-recorder tail — into an Incident, written as one JSONL
// record to Incidents and as a human-readable dump to Dump. The solve
// itself keeps running; the watchdog only observes.
//
// A nil *Watchdog is a valid no-op watchdog (Watch returns a no-op
// stop function), so callers arm it unconditionally.
//
// A Watchdog is safe for concurrent use: the parallel per-destination
// workers each Watch their own solve against one shared Watchdog, and
// incident writes are serialized.
type Watchdog struct {
	// After is the slow-solve threshold; a solve still running after
	// this long triggers an incident.
	After time.Duration
	// Tracer is the telemetry source snapshotted into incidents, and
	// the sink for the incident span, the watchdog.incidents counter,
	// and the solve.slow_ms histogram.
	Tracer *Tracer
	// Incidents, when non-nil, receives one JSON record per incident,
	// one per line.
	Incidents io.Writer
	// Dump, when non-nil, receives a human-readable incident report
	// (typically os.Stderr).
	Dump io.Writer
	// RecorderTail bounds how many trailing flight-recorder events are
	// embedded in an incident (0 = DefaultRecorderTail).
	RecorderTail int

	mu       sync.Mutex // serializes incident output
	fired    atomic.Int64
	disarmed atomic.Bool
}

// DefaultRecorderTail is the number of trailing flight-recorder events
// embedded in an incident record when RecorderTail is 0.
const DefaultRecorderTail = 64

// NewWatchdog returns a watchdog with the given threshold observing
// tr. It returns nil — the valid no-op watchdog — when after <= 0.
func NewWatchdog(after time.Duration, tr *Tracer) *Watchdog {
	if after <= 0 {
		return nil
	}
	return &Watchdog{After: after, Tracer: tr}
}

// Incidents counts how many times the watchdog has fired.
func (w *Watchdog) Count() int64 {
	if w == nil {
		return 0
	}
	return w.fired.Load()
}

// Disarm stops future timers from firing (in-flight Watch timers are
// suppressed too). Used at shutdown so a dying process does not spray
// incident dumps.
func (w *Watchdog) Disarm() {
	if w == nil {
		return
	}
	w.disarmed.Store(true)
}

// Watch arms the deadline for one named solve and returns the function
// to call when the solve finishes (however it finishes). If the solve
// outlives After, an incident fires once, on a timer goroutine; the
// returned stop function then records the total duration into the
// solve.slow_ms histogram. stop is idempotent.
//
// ctx is the solve's context: a request identity attached to it via
// WithRequest is stamped onto the incident record, its span, and its
// recorder event, so an incident fired inside aedd names the request,
// tenant, and session that caused it. The nil-watchdog check runs
// before ctx is touched, so the disabled path stays allocation-free.
func (w *Watchdog) Watch(ctx context.Context, name string) (stop func()) {
	if w == nil || w.After <= 0 {
		return func() {}
	}
	ri := requestPtr(ctx)
	start := time.Now()
	timer := time.AfterFunc(w.After, func() { w.incident(name, start, ri) })
	var once sync.Once
	return func() {
		once.Do(func() {
			timer.Stop()
			if elapsed := time.Since(start); elapsed >= w.After {
				w.Tracer.Metrics().Histogram("solve.slow_ms", LatencyBuckets).
					Observe(float64(elapsed.Microseconds()) / 1000)
			}
		})
	}
}

// Incident is the snapshot taken when a solve exceeds the watchdog
// deadline: what was running (open spans), what the solver counters
// said (metrics), and what just happened (recorder tail).
type Incident struct {
	// Solve names the watched solve (e.g. the destination prefix).
	Solve string `json:"solve"`
	// At is when the incident fired; the solve had been running for
	// RunningMS milliseconds by then (>= the threshold ThresholdMS).
	At          time.Time `json:"at"`
	RunningMS   int64     `json:"running_ms"`
	ThresholdMS int64     `json:"threshold_ms"`
	// RequestID, Tenant, and Session attribute the incident to the
	// service request whose solve outlived the deadline (empty for
	// solves armed without a request context — CLI runs, tests).
	RequestID string `json:"request_id,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Session   string `json:"session,omitempty"`
	// OpenSpans is the live span tree at incident time (Open spans
	// report elapsed-so-far durations).
	OpenSpans []Event `json:"open_spans,omitempty"`
	// Counters and Gauges are the registry snapshot at incident time.
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]GaugeSnapshot `json:"gauges,omitempty"`
	// RecorderEvents is the flight-recorder tail (newest last).
	RecorderEvents []RecorderEvent `json:"recorder_events,omitempty"`
	// RecorderDropped counts ring overwrites before the tail.
	RecorderDropped uint64 `json:"recorder_dropped,omitempty"`
}

// incident snapshots the tracer and emits the record. Runs on the
// timer goroutine while the watched solve is still going.
func (w *Watchdog) incident(name string, start time.Time, ri *RequestInfo) {
	if w.disarmed.Load() {
		return
	}
	w.fired.Add(1)
	now := time.Now()
	tr := w.Tracer

	// Taxonomy entry: incidents appear in the trace itself, so offline
	// analysis (aedtrace) sees them inline with the phases they hit.
	// The span allocation path can't take a ctx here, so the request
	// identity is wired in via newSpan directly.
	var sp *Span
	if tr != nil {
		sp = tr.newSpan("incident", 0, ri)
	}
	sp.SetStr("solve", name)
	sp.SetDur("threshold", w.After)
	sp.SetDur("running", now.Sub(start))
	sp.End()
	tr.Metrics().Counter("watchdog.incidents").Add(1)
	var reqID string
	if ri != nil {
		reqID = ri.ID
	}
	tr.Recorder().RecordRequest(EvIncident, name, reqID, w.After.Milliseconds(), 0)

	inc := Incident{
		Solve:       name,
		At:          now,
		RunningMS:   now.Sub(start).Milliseconds(),
		ThresholdMS: w.After.Milliseconds(),
	}
	if ri != nil {
		inc.RequestID, inc.Tenant, inc.Session = ri.ID, ri.Tenant, ri.Session
	}
	for _, s := range tr.OpenSpans() {
		inc.OpenSpans = append(inc.OpenSpans, spanEvent(s, tr.Epoch()))
	}
	snap := tr.Metrics().Snapshot()
	inc.Counters = snap.Counters
	inc.Gauges = snap.Gauges
	if rec := tr.Recorder(); rec != nil {
		events := rec.Events()
		tail := w.RecorderTail
		if tail <= 0 {
			tail = DefaultRecorderTail
		}
		if len(events) > tail {
			events = events[len(events)-tail:]
		}
		inc.RecorderEvents = events
		inc.RecorderDropped = rec.Dropped()
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.Incidents != nil {
		if data, err := json.Marshal(inc); err == nil {
			data = append(data, '\n')
			w.Incidents.Write(data)
		}
	}
	if w.Dump != nil {
		w.dump(inc)
	}
}

// dump renders an incident for a human watching stderr. Caller holds
// w.mu.
func (w *Watchdog) dump(inc Incident) {
	fmt.Fprintf(w.Dump, "aed: WATCHDOG: solve %q still running after %dms (threshold %dms)\n",
		inc.Solve, inc.RunningMS, inc.ThresholdMS)
	if len(inc.OpenSpans) > 0 {
		fmt.Fprintln(w.Dump, "  in-flight spans:")
		for _, ev := range inc.OpenSpans {
			fmt.Fprintf(w.Dump, "    %-24s %8.1fms%s\n", ev.Name, float64(ev.DurUS)/1000, attrString(ev.Attrs))
		}
	}
	if len(inc.Counters) > 0 {
		fmt.Fprintln(w.Dump, "  counters:")
		for _, name := range sortedKeys(inc.Counters) {
			fmt.Fprintf(w.Dump, "    %-32s %d\n", name, inc.Counters[name])
		}
	}
	if len(inc.RecorderEvents) > 0 {
		fmt.Fprintf(w.Dump, "  last %d recorder events (%d dropped):\n", len(inc.RecorderEvents), inc.RecorderDropped)
		for _, ev := range inc.RecorderEvents {
			label := ev.Kind
			if ev.Label != "" {
				label += " " + ev.Label
			}
			fmt.Fprintf(w.Dump, "    #%-8d %-28s a=%-12d b=%d\n", ev.Seq, label, ev.A, ev.B)
		}
	}
}
