package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/aed-net/aed/internal/obs/aedt"
)

// populatedTracer builds a tracer with a span tree, all metric types,
// and attribute values covering every attr kind.
func populatedTracer() *Tracer {
	tr := NewTracer()
	root := tr.Start("synthesize")
	root.SetInt("destinations", 12)
	root.SetStr("policy", "reachability")
	root.SetBool("incremental", true)
	root.SetDur("budget", 1500*time.Microsecond)
	child := root.Child("solve")
	child.SetInt("conflicts", 42)
	child.End()
	root.End()
	tr.Metrics().Counter("solver.conflicts").Add(42)
	tr.Metrics().Gauge("solver.trail").Set(17)
	tr.Metrics().Histogram("solve.ms", []float64{1, 5, 10}).Observe(3.5)
	return tr
}

func TestAEDTWriteReadMatchesJSONL(t *testing.T) {
	tr := populatedTracer()

	var jbuf, bbuf bytes.Buffer
	if err := WriteJSONL(&jbuf, tr); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := WriteAEDT(&bbuf, tr); err != nil {
		t.Fatalf("WriteAEDT: %v", err)
	}
	if !aedt.DetectAEDT(bbuf.Bytes()) {
		t.Fatal("binary output does not carry the AEDT magic")
	}

	jsonEvents, err := ReadEvents(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	binEvents, err := ReadAEDT(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAEDT: %v", err)
	}
	if len(binEvents) != len(jsonEvents) {
		t.Fatalf("binary carries %d events, JSONL %d", len(binEvents), len(jsonEvents))
	}
	for i := range jsonEvents {
		je, be := jsonEvents[i], binEvents[i]
		// JSON numbers decode as float64; the binary path keeps int64.
		// Compare through the same normalization the analyzer applies.
		if je.Type != be.Type || je.Name != be.Name || je.ID != be.ID ||
			je.Parent != be.Parent || je.StartUS != be.StartUS || je.DurUS != be.DurUS ||
			je.Value != be.Value || je.Max != be.Max || je.Count != be.Count ||
			je.Sum != be.Sum || !reflect.DeepEqual(je.Bounds, be.Bounds) ||
			!reflect.DeepEqual(je.Counts, be.Counts) {
			t.Errorf("event %d differs:\n json %+v\n aedt %+v", i, je, be)
		}
		if len(je.Attrs) != len(be.Attrs) {
			t.Errorf("event %d attr count: json %d, aedt %d", i, len(je.Attrs), len(be.Attrs))
			continue
		}
		for k, jv := range je.Attrs {
			bv, ok := be.Attrs[k]
			if !ok {
				t.Errorf("event %d missing attr %q in binary form", i, k)
				continue
			}
			// JSON round-trips ints and bools through float64/bool; the
			// binary form is typed. Compare printed forms, which is what
			// every view renders.
			if jprint, bprint := attrString(map[string]any{k: jv}), attrString(map[string]any{k: bv}); jprint != bprint {
				t.Errorf("event %d attr %q: json %s, aedt %s", i, k, jprint, bprint)
			}
		}
	}
}

func TestReadEventsAuto(t *testing.T) {
	tr := populatedTracer()
	var jbuf, bbuf bytes.Buffer
	if err := WriteJSONL(&jbuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteAEDT(&bbuf, tr); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadEventsAuto(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("auto-read JSONL: %v", err)
	}
	fromBin, err := ReadEventsAuto(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatalf("auto-read AEDT: %v", err)
	}
	if len(fromJSON) != len(fromBin) || len(fromJSON) == 0 {
		t.Fatalf("auto-read: %d JSONL events, %d AEDT events", len(fromJSON), len(fromBin))
	}
	if _, err := ReadEventsAuto(bytes.NewReader(nil)); err != nil {
		t.Fatalf("auto-read of empty input: %v", err)
	}
}

func TestReadAEDTTruncated(t *testing.T) {
	tr := populatedTracer()
	var buf bytes.Buffer
	if err := WriteAEDT(&buf, tr); err != nil {
		t.Fatal(err)
	}
	_, err := ReadAEDT(bytes.NewReader(buf.Bytes()[:buf.Len()-5]))
	if err == nil {
		t.Fatal("truncated stream must fail loudly")
	}
}

func TestSinkForPath(t *testing.T) {
	cases := map[string]Sink{
		"trace.aedt":       BinarySink{},
		"TRACE.AEDT":       BinarySink{},
		"/tmp/x/out.aedt":  BinarySink{},
		"trace.jsonl":      JSONLSink{},
		"trace":            JSONLSink{},
		"weird.aedt.jsonl": JSONLSink{},
	}
	for path, want := range cases {
		if got := SinkForPath(path); reflect.TypeOf(got) != reflect.TypeOf(want) {
			t.Errorf("SinkForPath(%q) = %T, want %T", path, got, want)
		}
	}
}

func TestSinkWriteRecorder(t *testing.T) {
	tr := NewTracer()
	rec := NewRecorder(16)
	tr.SetRecorder(rec)
	rec.RecordLabeled(EvCacheHit, "10.0.0.0/24", 7, 0)
	rec.Record(EvBoundTighten, 12, 3)

	var jbuf, bbuf bytes.Buffer
	if err := (JSONLSink{}).WriteRecorder(&jbuf, rec); err != nil {
		t.Fatalf("JSONL WriteRecorder: %v", err)
	}
	if err := (BinarySink{}).WriteRecorder(&bbuf, rec); err != nil {
		t.Fatalf("binary WriteRecorder: %v", err)
	}
	if !strings.Contains(jbuf.String(), `"type":"recorder"`) ||
		!strings.Contains(jbuf.String(), `"label":"10.0.0.0/24"`) {
		t.Errorf("JSONL recorder drain missing fields:\n%s", jbuf.String())
	}

	jsonEvents, err := ReadEvents(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	binEvents, err := ReadAEDT(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jsonEvents, binEvents) {
		t.Errorf("recorder drains differ:\n json %+v\n aedt %+v", jsonEvents, binEvents)
	}
	if len(binEvents) != 2 || binEvents[0].Name != "cache_hit" ||
		binEvents[0].Label != "10.0.0.0/24" || binEvents[1].A != 12 {
		t.Errorf("recorder events decoded wrong: %+v", binEvents)
	}
}

func TestAttrConversion(t *testing.T) {
	cases := []struct {
		in   any
		kind aedt.AttrKind
	}{
		{int64(7), aedt.AttrInt},
		{int(7), aedt.AttrInt},
		{true, aedt.AttrBool},
		{"x", aedt.AttrStr},
		{float64(3), aedt.AttrInt}, // integral float: stored as int
		{float64(3.5), aedt.AttrFloat},
		{uint16(9), aedt.AttrStr}, // unknown types stringify
	}
	for _, c := range cases {
		if got := attrToAEDT("k", c.in); got.Kind != c.kind {
			t.Errorf("attrToAEDT(%v) kind = %d, want %d", c.in, got.Kind, c.kind)
		}
	}
	// Non-integral floats survive the bits round trip.
	a := attrToAEDT("k", 2.75)
	rec := aedt.Record{Kind: aedt.KindSpan, Attrs: []aedt.Attr{a}}
	ev, ok := recordToEvent(&rec)
	if !ok || ev.Attrs["k"] != 2.75 {
		t.Errorf("float attr round trip: %+v", ev.Attrs)
	}
}
