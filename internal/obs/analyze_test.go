package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// tracedRun builds a small realistic trace: one synthesize root with
// two solve children (one nested extract), plus metrics.
func tracedRun() *Tracer {
	tr := NewTracer()
	root := tr.Start("synthesize")
	s1 := root.Child("solve")
	s1.Child("extract").End()
	s1.End()
	root.Child("solve").End()
	root.End()
	tr.Metrics().Counter("solver.conflicts").Add(12)
	return tr
}

func TestAnalyzeRebuildsTree(t *testing.T) {
	tr := tracedRun()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(events)
	if len(a.Roots) != 1 || a.Roots[0].Name != "synthesize" {
		t.Fatalf("roots = %+v", a.Roots)
	}
	root := a.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	for _, c := range root.Children {
		if c.Name != "solve" {
			t.Errorf("child %q, want solve", c.Name)
		}
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Name != "extract" {
		t.Errorf("first solve should own the extract span: %+v", root.Children[0].Children)
	}
	if len(a.Metrics) != 1 || a.Metrics[0].Name != "solver.conflicts" {
		t.Errorf("metrics = %+v", a.Metrics)
	}
	if got := len(a.Spans()); got != 4 {
		t.Errorf("walked %d spans, want 4", got)
	}
}

// TestPhasesMatchTraceDurations is the aedtrace/WriteTraceSummary
// consistency guarantee: per-phase totals equal the per-span durations
// the summary prints, summed by name, within µs rounding.
func TestPhasesMatchTraceDurations(t *testing.T) {
	tr := tracedRun()
	wantTotal := make(map[string]int64)
	wantCount := make(map[string]int)
	for _, sp := range tr.Spans() {
		wantTotal[sp.Name] += sp.Duration.Microseconds()
		wantCount[sp.Name]++
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	phases := Analyze(events).Phases()
	if len(phases) != len(wantTotal) {
		t.Fatalf("got %d phases, want %d", len(phases), len(wantTotal))
	}
	for _, p := range phases {
		if p.TotalUS != wantTotal[p.Name] {
			t.Errorf("phase %s total = %dµs, want %dµs", p.Name, p.TotalUS, wantTotal[p.Name])
		}
		if p.Count != wantCount[p.Name] {
			t.Errorf("phase %s count = %d, want %d", p.Name, p.Count, wantCount[p.Name])
		}
		if p.SelfUS < 0 || p.SelfUS > p.TotalUS {
			t.Errorf("phase %s self = %dµs out of range (total %dµs)", p.Name, p.SelfUS, p.TotalUS)
		}
		if p.MaxUS > p.TotalUS {
			t.Errorf("phase %s max %dµs > total %dµs", p.Name, p.MaxUS, p.TotalUS)
		}
	}
}

func TestPhaseSelfSubtractsChildren(t *testing.T) {
	events := []Event{
		{Type: "span", ID: 1, Name: "root", StartUS: 0, DurUS: 100},
		{Type: "span", ID: 2, Parent: 1, Name: "child", StartUS: 10, DurUS: 30},
		{Type: "span", ID: 3, Parent: 1, Name: "child", StartUS: 50, DurUS: 40},
	}
	phases := Analyze(events).Phases()
	byName := make(map[string]PhaseStat)
	for _, p := range phases {
		byName[p.Name] = p
	}
	if r := byName["root"]; r.SelfUS != 30 { // 100 - 30 - 40
		t.Errorf("root self = %d, want 30", r.SelfUS)
	}
	if c := byName["child"]; c.TotalUS != 70 || c.MaxUS != 40 || c.Count != 2 {
		t.Errorf("child stat = %+v", c)
	}
	// Sorted by total descending: root first.
	if phases[0].Name != "root" {
		t.Errorf("phase order = %v", phases)
	}
}

func TestSlowestAndCriticalPath(t *testing.T) {
	events := []Event{
		{Type: "span", ID: 1, Name: "root", StartUS: 0, DurUS: 100},
		{Type: "span", ID: 2, Parent: 1, Name: "fast", StartUS: 0, DurUS: 5},
		{Type: "span", ID: 3, Parent: 1, Name: "slow", StartUS: 5, DurUS: 90},
		{Type: "span", ID: 4, Parent: 3, Name: "inner", StartUS: 6, DurUS: 80},
	}
	a := Analyze(events)
	top := a.Slowest(2)
	if len(top) != 2 || top[0].Name != "root" || top[1].Name != "slow" {
		t.Errorf("slowest = %v, %v", top[0].Name, top[1].Name)
	}
	var path []string
	for _, n := range a.CriticalPath() {
		path = append(path, n.Name)
	}
	want := []string{"root", "slow", "inner"}
	if len(path) != len(want) {
		t.Fatalf("critical path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", path, want)
		}
	}
}

func TestAnalyzeOrphanParentBecomesRoot(t *testing.T) {
	events := []Event{
		{Type: "span", ID: 5, Parent: 99, Name: "orphan", StartUS: 0, DurUS: 10},
	}
	a := Analyze(events)
	if len(a.Roots) != 1 || a.Roots[0].Name != "orphan" {
		t.Errorf("orphan not promoted to root: %+v", a.Roots)
	}
}

// TestAnalyzeOutOfOrderEnds feeds spans in the order a real trace
// lists them — children before parents, ends interleaved arbitrarily —
// and requires the same tree as the sorted stream.
func TestAnalyzeOutOfOrderEnds(t *testing.T) {
	// root(1) > a(2) > inner(4); root > b(3). Stream order scrambles
	// every relationship: grandchild first, root in the middle.
	events := []Event{
		{Type: "span", ID: 4, Parent: 2, Name: "inner", StartUS: 12, DurUS: 5},
		{Type: "span", ID: 3, Parent: 1, Name: "b", StartUS: 40, DurUS: 20},
		{Type: "span", ID: 1, Name: "root", StartUS: 0, DurUS: 100},
		{Type: "span", ID: 2, Parent: 1, Name: "a", StartUS: 10, DurUS: 25},
	}
	for range events {
		a := Analyze(events)
		if len(a.Roots) != 1 || a.Roots[0].Name != "root" {
			t.Fatalf("roots = %+v", a.Roots)
		}
		kids := a.Roots[0].Children
		if len(kids) != 2 || kids[0].Name != "a" || kids[1].Name != "b" {
			t.Fatalf("children not sorted by start: %+v", kids)
		}
		if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "inner" {
			t.Fatalf("grandchild lost: %+v", kids[0].Children)
		}
		// Rotate and re-analyze: every arrival order must agree.
		events = append(events[1:], events[0])
	}
}

// TestAnalyzeOverlappingSiblings pins self-time clamping: siblings
// whose durations sum past the parent (parallel workers, clock skew)
// must clamp the parent's self time to zero, never negative.
func TestAnalyzeOverlappingSiblings(t *testing.T) {
	events := []Event{
		{Type: "span", ID: 1, Name: "solve", StartUS: 0, DurUS: 100},
		{Type: "span", ID: 2, Parent: 1, Name: "worker", StartUS: 0, DurUS: 70},
		{Type: "span", ID: 3, Parent: 1, Name: "worker", StartUS: 5, DurUS: 70},
	}
	phases := Analyze(events).Phases()
	byName := make(map[string]PhaseStat)
	for _, p := range phases {
		byName[p.Name] = p
	}
	if s := byName["solve"]; s.SelfUS != 0 {
		t.Errorf("overlapping children must clamp self to 0, got %d", s.SelfUS)
	}
	if w := byName["worker"]; w.TotalUS != 140 || w.Count != 2 {
		t.Errorf("worker stat = %+v", w)
	}
}

// TestAnalyzeMissingParents covers a truncated trace: a subtree whose
// interior span was cut. The stranded spans become roots (never
// dropped) and the phase totals still count every span.
func TestAnalyzeMissingParents(t *testing.T) {
	events := []Event{
		{Type: "span", ID: 1, Name: "root", StartUS: 0, DurUS: 100},
		{Type: "span", ID: 2, Parent: 1, Name: "kept", StartUS: 5, DurUS: 20},
		// ID 3 ("lost") was truncated away; its children survive.
		{Type: "span", ID: 4, Parent: 3, Name: "stranded", StartUS: 30, DurUS: 10},
		{Type: "span", ID: 5, Parent: 3, Name: "stranded", StartUS: 45, DurUS: 12},
	}
	a := Analyze(events)
	if len(a.Roots) != 3 {
		t.Fatalf("roots = %d, want 3 (root + 2 stranded)", len(a.Roots))
	}
	if got := len(a.Spans()); got != 4 {
		t.Errorf("Spans() walked %d, want 4", got)
	}
	var total int
	for _, p := range a.Phases() {
		total += p.Count
	}
	if total != 4 {
		t.Errorf("phase counts sum to %d, want 4", total)
	}
}

// TestAnalyzeSelfParent pins the cycle guard: a span claiming itself
// as parent must become a root, not an infinite walk.
func TestAnalyzeSelfParent(t *testing.T) {
	events := []Event{
		{Type: "span", ID: 7, Parent: 7, Name: "ouroboros", StartUS: 0, DurUS: 10},
	}
	a := Analyze(events)
	if len(a.Roots) != 1 || a.Roots[0].Name != "ouroboros" {
		t.Fatalf("self-parent span not promoted to root: %+v", a.Roots)
	}
	if len(a.Roots[0].Children) != 0 {
		t.Error("self-parent span must not be its own child")
	}
	if got := len(a.Spans()); got != 1 {
		t.Errorf("Spans() walked %d, want 1", got)
	}
}

// TestAnalyzePhasesIdenticalAcrossFormats is the obs-level twin of the
// aedtrace acceptance pin: one tracer exported through both sinks must
// analyze to deep-equal phase tables and identical tree shapes.
func TestAnalyzePhasesIdenticalAcrossFormats(t *testing.T) {
	tr := tracedRun()
	var jbuf, abuf bytes.Buffer
	if err := WriteJSONL(&jbuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteAEDT(&abuf, tr); err != nil {
		t.Fatal(err)
	}
	jEvents, err := ReadEventsAuto(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	aEvents, err := ReadEventsAuto(&abuf)
	if err != nil {
		t.Fatal(err)
	}
	ja, aa := Analyze(jEvents), Analyze(aEvents)
	if !reflect.DeepEqual(ja.Phases(), aa.Phases()) {
		t.Errorf("phase tables differ:\njsonl: %+v\naedt:  %+v", ja.Phases(), aa.Phases())
	}
	shape := func(a *Analysis) []string {
		var out []string
		var walk func(n *SpanNode, depth int)
		walk = func(n *SpanNode, depth int) {
			out = append(out, fmt.Sprintf("%d:%s:%d", depth, n.Name, n.DurUS))
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		for _, r := range a.Roots {
			walk(r, 0)
		}
		return out
	}
	if !reflect.DeepEqual(shape(ja), shape(aa)) {
		t.Errorf("tree shapes differ:\njsonl: %v\naedt:  %v", shape(ja), shape(aa))
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if len(a.Roots) != 0 || len(a.Spans()) != 0 || len(a.Phases()) != 0 || len(a.CriticalPath()) != 0 {
		t.Error("empty trace must analyze to empty everything")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 4 observations in (1,2], 4 in (2,4]: p50 at the (1,2]/(2,4]
	// boundary, p100 at the top of (2,4].
	for _, v := range []float64{1.5, 1.5, 1.5, 1.5, 3, 3, 3, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := s.Quantile(0.25); got != 1.5 {
		t.Errorf("p25 = %v, want 1.5 (midpoint of first occupied bucket)", got)
	}
	if got := s.Quantile(0.75); got != 3 {
		t.Errorf("p75 = %v, want 3", got)
	}
	// First-bucket interpolation starts from 0.
	h2 := newHistogram([]float64{10})
	h2.Observe(5)
	h2.Observe(5)
	if got := h2.Snapshot().Quantile(0.5); got != 5 {
		t.Errorf("first-bucket p50 = %v, want 5", got)
	}
	// Overflow bucket clamps to the largest finite bound.
	h3 := newHistogram([]float64{1, 10})
	h3.Observe(1e6)
	if got := h3.Snapshot().Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %v, want 10", got)
	}
	// Empty histogram and clamped q.
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	if got := h3.Snapshot().Quantile(-1); got != 10 {
		t.Errorf("q<0 clamps to min, got %v", got)
	}
}

func TestWriteSummaryQuantiles(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 100; i++ {
		tr.Metrics().Histogram("solve_ms", LatencyBuckets).Observe(float64(i % 20))
	}
	var buf bytes.Buffer
	WriteSummary(&buf, tr)
	out := buf.String()
	for _, want := range []string{"p50=", "p95=", "p99=", "n=100"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestOpenSpansSnapshot(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("solve")
	sp.SetStr("dest", "10.0.0.0/24")
	time.Sleep(time.Millisecond)
	open := tr.OpenSpans()
	if len(open) != 1 {
		t.Fatalf("open spans = %d, want 1", len(open))
	}
	o := open[0]
	if !o.Open || o.Name != "solve" || o.Duration <= 0 || o.Attrs["dest"] != "10.0.0.0/24" {
		t.Errorf("open snapshot = %+v", o)
	}
	sp.End()
	if len(tr.OpenSpans()) != 0 {
		t.Error("span still open after End")
	}
	if rec := tr.Spans()[0]; rec.Open {
		t.Error("finished record must not be marked open")
	}
}

func TestSetAttrAfterEndRejected(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("solve")
	sp.SetInt("before", 1)
	sp.End()
	sp.SetInt("after", 2)
	sp.SetStr("after_s", "x")
	rec := tr.Spans()[0]
	if _, ok := rec.Attrs["before"]; !ok {
		t.Error("pre-End attribute lost")
	}
	if _, ok := rec.Attrs["after"]; ok {
		t.Error("post-End attribute must be rejected")
	}
	if _, ok := rec.Attrs["after_s"]; ok {
		t.Error("post-End attribute must be rejected")
	}
}
