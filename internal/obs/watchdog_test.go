package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test poll writer output produced on the watchdog
// timer goroutine without racing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWatchdogFiresIncidentWithoutAborting(t *testing.T) {
	tr := NewTracer()
	rec := NewRecorder(32)
	tr.SetRecorder(rec)
	rec.RecordLabeled(EvSolveStart, "10.7.0.0/24", 0, 0)
	rec.Record(EvRestart, 1, 120)

	var incidents, dump syncBuffer
	w := NewWatchdog(5*time.Millisecond, tr)
	w.Incidents = &incidents
	w.Dump = &dump

	ctx := WithRequest(context.Background(), RequestInfo{
		ID: "req-wd-1", Tenant: "acme", Session: "s1",
	})
	sp := tr.Start("solve")
	sp.SetStr("dest", "10.7.0.0/24")
	stop := w.Watch(ctx, "10.7.0.0/24")

	waitFor(t, "incident JSONL", func() bool {
		return strings.Contains(incidents.String(), "\n")
	})
	// The solve is still running: stop after the incident, as a real
	// slow solve would.
	stop()
	sp.End()

	if w.Count() != 1 {
		t.Errorf("incident count = %d, want 1", w.Count())
	}
	var inc Incident
	if err := json.Unmarshal([]byte(strings.SplitN(incidents.String(), "\n", 2)[0]), &inc); err != nil {
		t.Fatalf("incident is not valid JSON: %v", err)
	}
	if inc.Solve != "10.7.0.0/24" {
		t.Errorf("incident solve = %q", inc.Solve)
	}
	if inc.ThresholdMS != 5 || inc.RunningMS < inc.ThresholdMS {
		t.Errorf("incident timing = running %dms threshold %dms", inc.RunningMS, inc.ThresholdMS)
	}
	if inc.RequestID != "req-wd-1" || inc.Tenant != "acme" || inc.Session != "s1" {
		t.Errorf("incident attribution = %q/%q/%q, want req-wd-1/acme/s1",
			inc.RequestID, inc.Tenant, inc.Session)
	}
	var foundOpen bool
	for _, ev := range inc.OpenSpans {
		if ev.Name == "solve" && ev.Open && ev.Attrs["dest"] == "10.7.0.0/24" {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Errorf("incident open spans missing the live solve span: %+v", inc.OpenSpans)
	}
	var sawSolveStart bool
	for _, ev := range inc.RecorderEvents {
		if ev.Kind == "solve_start" && ev.Label == "10.7.0.0/24" {
			sawSolveStart = true
		}
	}
	if !sawSolveStart {
		t.Errorf("incident recorder tail missing events: %+v", inc.RecorderEvents)
	}

	// Telemetry side effects: incident span, counter, recorder event,
	// and — after stop — the slow-solve histogram.
	if inc.Counters["watchdog.incidents"] != 1 {
		t.Errorf("watchdog.incidents in snapshot = %d", inc.Counters["watchdog.incidents"])
	}
	var incidentSpan bool
	for _, s := range tr.Spans() {
		if s.Name == "incident" && s.Attrs["solve"] == "10.7.0.0/24" {
			incidentSpan = true
		}
	}
	if !incidentSpan {
		t.Error("no incident span recorded in the trace")
	}
	var evIncident bool
	for _, ev := range rec.Events() {
		if ev.Kind == "incident" && ev.Label == "10.7.0.0/24" {
			evIncident = true
		}
	}
	if !evIncident {
		t.Error("no incident event in the flight recorder")
	}
	if h := tr.Metrics().Snapshot().Histograms["solve.slow_ms"]; h.Count != 1 {
		t.Errorf("solve.slow_ms count = %d, want 1", h.Count)
	}
	if out := dump.String(); !strings.Contains(out, "WATCHDOG") || !strings.Contains(out, "10.7.0.0/24") {
		t.Errorf("human dump missing content:\n%s", out)
	}
}

func TestWatchdogQuietOnFastSolve(t *testing.T) {
	tr := NewTracer()
	var incidents syncBuffer
	w := NewWatchdog(time.Hour, tr)
	w.Incidents = &incidents

	stop := w.Watch(context.Background(), "fast")
	stop()
	stop() // idempotent

	if w.Count() != 0 {
		t.Errorf("incident count = %d, want 0", w.Count())
	}
	if incidents.String() != "" {
		t.Errorf("unexpected incident output: %q", incidents.String())
	}
	if h := tr.Metrics().Snapshot().Histograms["solve.slow_ms"]; h.Count != 0 {
		t.Errorf("fast solve observed into solve.slow_ms (%d)", h.Count)
	}
}

func TestWatchdogNilAndDisabled(t *testing.T) {
	if NewWatchdog(0, NewTracer()) != nil {
		t.Error("threshold 0 must yield the nil no-op watchdog")
	}
	var w *Watchdog
	stop := w.Watch(context.Background(), "anything")
	stop()
	if w.Count() != 0 {
		t.Error("nil watchdog count must be 0")
	}
	w.Disarm()
}

func TestWatchdogDisarm(t *testing.T) {
	tr := NewTracer()
	var incidents syncBuffer
	w := NewWatchdog(time.Millisecond, tr)
	w.Incidents = &incidents
	w.Disarm()
	stop := w.Watch(context.Background(), "late")
	time.Sleep(20 * time.Millisecond)
	stop()
	if w.Count() != 0 || incidents.String() != "" {
		t.Errorf("disarmed watchdog fired: count=%d out=%q", w.Count(), incidents.String())
	}
}
