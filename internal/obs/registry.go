package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named set of counters, gauges and histograms. All
// instruments are lock-free on the update path (atomic adds), so the
// parallel per-destination solver workers record without contention;
// the registry map itself is guarded by a mutex taken only on first
// lookup of a name. A nil *Registry hands out nil instruments, whose
// methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// recorder optionally carries a flight recorder alongside the
	// instruments, so every layer that already receives the registry can
	// feed the event ring (see recorder.go).
	recorder recorderRef
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending upper bucket bounds on first use (bounds
// are ignored for an already-registered name).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value (and updates the running maximum).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last set value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the largest value ever set.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations into fixed buckets. Buckets are
// defined by ascending upper bounds; an implicit +Inf bucket catches
// the overflow. Observation is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last = overflow
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum

	// exemplars retains, per bucket, the last request ID observed into
	// it via ObserveExemplar — the link from a latency bucket back to a
	// replayable request. Plain Observe never touches it.
	exemplars []atomic.Pointer[string]
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[string], len(bs)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and retains id as the exemplar of
// the bucket the sample lands in (the last writer wins; an empty id
// records the sample without touching the exemplar). Exemplars link an
// aggregate — "something landed in the 250–500ms bucket" — back to one
// concrete request ID that can be pulled up with aedtrace -request.
func (h *Histogram) ObserveExemplar(v float64, id string) {
	if h == nil {
		return
	}
	if id != "" {
		// Copy into a branch-local before taking its address: &id would
		// make the parameter escape at function entry, costing the nil
		// and no-exemplar paths a heap allocation they must not pay.
		e := id
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&e)
	}
	h.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	var any bool
	for i := range h.exemplars {
		if h.exemplars[i].Load() != nil {
			any = true
			break
		}
	}
	if any {
		s.Exemplars = make([]string, len(h.exemplars))
		for i := range h.exemplars {
			if p := h.exemplars[i].Load(); p != nil {
				s.Exemplars[i] = *p
			}
		}
	}
	return s
}

// HistogramSnapshot is a plain-value copy of a histogram's state.
// Counts[i] holds observations v <= Bounds[i]; the final entry is the
// overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	// Exemplars, parallel to Counts, holds each bucket's last observed
	// request ID ("" for buckets without one). Nil when the histogram
	// has never been fed through ObserveExemplar.
	Exemplars []string
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket that contains
// it, Prometheus-style: observations are assumed uniformly spread
// within a bucket, the first bucket interpolates from 0 (the
// histograms here record non-negative latencies and depths), and a
// quantile landing in the +Inf overflow bucket reports the largest
// finite bound (the estimate cannot exceed what the buckets resolve).
// Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank || c == 0 {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time copy of every instrument in a registry —
// the in-memory inspection API used by tests and the summary sink.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]GaugeSnapshot
	Histograms map[string]HistogramSnapshot
}

// GaugeSnapshot is a gauge's last and maximum value.
type GaugeSnapshot struct {
	Value int64
	Max   int64
}

// Snapshot copies the registry. Safe to call while workers are still
// recording; each instrument is read atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// LatencyBuckets are the default millisecond buckets for solver-call
// and phase latencies (0.1ms .. 10s).
var LatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// DepthBuckets are power-of-two buckets for trail/clause depth gauges.
var DepthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
