package objective

import "fmt"

// Library returns the predefined objective sets of the paper's Table 2,
// keyed by the short names the evaluation uses. A named entry can
// expand to several objectives; e.g. preserve-templates equates both
// filter families across same-named instances and discourages
// attaching brand-new filters (which would break device similarity
// even though no existing subtree changes).
func Library() map[string][]Objective {
	mk := func(ss ...string) []Objective {
		out := make([]Objective, 0, len(ss))
		for _, s := range ss {
			o, err := ParseOne(s)
			if err != nil {
				panic(fmt.Sprintf("objective library: %v", err))
			}
			out = append(out, o)
		}
		return out
	}
	return map[string][]Objective{
		"preserve-templates": mk(
			`EQUATE //PacketFilter GROUPBY name`,
			`EQUATE //RouteFilter GROUPBY name`,
			`NOMODIFY //RouteFilter[virtual="true"] GROUPBY name`,
			`NOMODIFY //PacketFilter[virtual="true"] GROUPBY name`,
		),
		"min-devices": mk(`NOMODIFY //Router GROUPBY name`),
		"min-pfs": mk(`ELIMINATE //PacketFilter/Rule GROUPBY line`,
			`NOMODIFY //PacketFilter[virtual="true"] GROUPBY name`),
		"avoid-static": mk(`ELIMINATE //StaticRoute GROUPBY prefix`,
			`NOMODIFY //StaticRoute[virtual="true"] GROUPBY prefix`),
		// min-lines: one NOMODIFY per leaf is expressed by weighting
		// every router's subtree; the core engine refines this by
		// penalizing each delta individually (see core.MinLines).
		"min-lines": mk(`NOMODIFY //Router`),
	}
}

// Named returns the library objective set for a short name.
func Named(name string) ([]Objective, error) {
	os, ok := Library()[name]
	if !ok {
		return nil, fmt.Errorf("objective: unknown predefined objective %q", name)
	}
	return os, nil
}

// AvoidRouters builds NOMODIFY objectives for specific devices (the
// "avoid changing devices with HW/SW issues" row of Table 2).
func AvoidRouters(names ...string) []Objective {
	var out []Objective
	for _, n := range names {
		o, err := ParseOne(fmt.Sprintf(`NOMODIFY //Router[name="%s"] WEIGHT 10`, n))
		if err != nil {
			panic(err)
		}
		out = append(out, o)
	}
	return out
}
