package objective

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/aed-net/aed/internal/config"
)

// Restriction is the action an objective applies to selected subtrees
// (paper §7.1).
type Restriction int

// Supported restrictions.
const (
	// NoModify: no delta variable under the subtree may be set.
	NoModify Restriction = iota
	// Eliminate: remove-deltas for existing nodes are set and
	// add-deltas are unset, eliminating the subtree.
	Eliminate
	// Equate: subtrees in the same group must receive identical
	// updates (configuration similarity).
	Equate
	// Modify: the negation of NoModify — prefer changing these
	// subtrees (the "prefer changes" extension mentioned in §7.1).
	Modify
)

func (r Restriction) String() string {
	switch r {
	case NoModify:
		return "NOMODIFY"
	case Eliminate:
		return "ELIMINATE"
	case Equate:
		return "EQUATE"
	case Modify:
		return "MODIFY"
	}
	return "UNKNOWN"
}

// Objective is one parsed management objective.
type Objective struct {
	Restriction Restriction
	Path        *XPath
	// GroupBy, when non-empty, fans the objective out into one
	// objective per distinct value of this attribute among selected
	// nodes (syntactic sugar, desugared by Instantiate).
	GroupBy string
	Weight  int // default 1
}

// String renders the objective in the language's source form.
func (o Objective) String() string {
	s := o.Restriction.String() + " " + o.Path.String()
	if o.GroupBy != "" {
		s += " GROUPBY " + o.GroupBy
	}
	if o.Weight > 1 {
		s += fmt.Sprintf(" WEIGHT %d", o.Weight)
	}
	return s
}

// ParseOne parses a single objective line:
//
//	NOMODIFY //Router[name="B"]
//	EQUATE //PacketFilter GROUPBY name
//	ELIMINATE //RoutingProcess[type="static"]/Origination WEIGHT 5
func ParseOne(line string) (Objective, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Objective{}, fmt.Errorf("objective: want '<RESTRICTION> <xpath> ...', got %q", line)
	}
	o := Objective{Weight: 1}
	switch strings.ToUpper(fields[0]) {
	case "NOMODIFY":
		o.Restriction = NoModify
	case "ELIMINATE":
		o.Restriction = Eliminate
	case "EQUATE":
		o.Restriction = Equate
	case "MODIFY":
		o.Restriction = Modify
	default:
		return Objective{}, fmt.Errorf("objective: unknown restriction %q", fields[0])
	}
	x, err := ParseXPath(fields[1])
	if err != nil {
		return Objective{}, err
	}
	o.Path = x
	rest := fields[2:]
	for len(rest) > 0 {
		switch strings.ToUpper(rest[0]) {
		case "GROUPBY":
			if len(rest) < 2 {
				return Objective{}, fmt.Errorf("objective: GROUPBY wants an attribute")
			}
			o.GroupBy = rest[1]
			rest = rest[2:]
		case "WEIGHT":
			if len(rest) < 2 {
				return Objective{}, fmt.Errorf("objective: WEIGHT wants a number")
			}
			w, err := strconv.Atoi(rest[1])
			if err != nil || w <= 0 {
				return Objective{}, fmt.Errorf("objective: bad weight %q", rest[1])
			}
			o.Weight = w
			rest = rest[2:]
		default:
			return Objective{}, fmt.Errorf("objective: unexpected token %q", rest[0])
		}
	}
	return o, nil
}

// Parse reads an objective file: one objective per line, '#' comments.
func Parse(text string) ([]Objective, error) {
	var out []Objective
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		o, err := ParseOne(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, o)
	}
	return out, sc.Err()
}

// Instance is a desugared objective: a restriction over a concrete set
// of subtree roots. EQUATE instances additionally carry group members
// to be made consistent.
type Instance struct {
	Restriction Restriction
	Weight      int
	Label       string
	// Roots are the selected subtree roots the restriction applies to.
	Roots []*config.Node
}

// Instantiate desugars the objective against a syntax tree: GROUPBY
// fans out into one Instance per attribute value; without GROUPBY a
// single Instance covers all selected nodes.
func (o Objective) Instantiate(tree *config.Node) []Instance {
	nodes := o.Path.Select(tree)
	if len(nodes) == 0 {
		return nil
	}
	if o.GroupBy == "" {
		return []Instance{{
			Restriction: o.Restriction,
			Weight:      o.Weight,
			Label:       o.String(),
			Roots:       nodes,
		}}
	}
	groups := make(map[string][]*config.Node)
	for _, n := range nodes {
		groups[n.Attr(o.GroupBy)] = append(groups[n.Attr(o.GroupBy)], n)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Instance
	for _, k := range keys {
		out = append(out, Instance{
			Restriction: o.Restriction,
			Weight:      o.Weight,
			Label:       fmt.Sprintf("%s %s [%s=%s]", o.Restriction, o.Path, o.GroupBy, k),
			Roots:       groups[k],
		})
	}
	return out
}

// InstantiateAll desugars a list of objectives.
func InstantiateAll(os []Objective, tree *config.Node) []Instance {
	var out []Instance
	for _, o := range os {
		out = append(out, o.Instantiate(tree)...)
	}
	return out
}
