// Package objective implements AED's management-objective language
// (paper §7): objectives are restrictions (NOMODIFY, ELIMINATE,
// EQUATE, and the "prefer changes" extension MODIFY) applied to syntax
// subtrees selected by an XPath-like expression, optionally fanned out
// per attribute value with GROUPBY and weighted with WEIGHT.
package objective

import (
	"fmt"
	"strings"

	"github.com/aed-net/aed/internal/config"
)

// XPath is a parsed path expression over the configuration syntax
// tree. The supported grammar is the fragment AED uses:
//
//	expr  := ("//" | "/") step ( "/" step )*
//	step  := NodeType ( "[" attr "=" '"' value '"' "]" )*
//
// A leading "//" matches the first step anywhere in the tree; a
// leading "/" anchors it at the root's children. Subsequent steps
// match direct children.
type XPath struct {
	anywhere bool
	steps    []step
	src      string
}

type step struct {
	nodeType string
	preds    []pred
}

type pred struct {
	attr  string
	value string
}

// ParseXPath parses the XPath fragment described on XPath.
func ParseXPath(s string) (*XPath, error) {
	x := &XPath{src: s}
	rest := s
	switch {
	case strings.HasPrefix(rest, "//"):
		x.anywhere = true
		rest = rest[2:]
	case strings.HasPrefix(rest, "/"):
		rest = rest[1:]
	default:
		return nil, fmt.Errorf("xpath: %q must start with / or //", s)
	}
	if rest == "" {
		return nil, fmt.Errorf("xpath: %q has no steps", s)
	}
	for _, part := range splitSteps(rest) {
		st, err := parseStep(part)
		if err != nil {
			return nil, fmt.Errorf("xpath %q: %w", s, err)
		}
		x.steps = append(x.steps, st)
	}
	return x, nil
}

// splitSteps splits on '/' outside bracketed predicates, so values
// containing slashes (e.g. prefixes like "3.0.0.0/16") survive.
func splitSteps(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case '/':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func parseStep(s string) (step, error) {
	st := step{}
	name := s
	for {
		open := strings.IndexByte(name, '[')
		if open < 0 {
			break
		}
		closeIdx := strings.IndexByte(name, ']')
		if closeIdx < open {
			return st, fmt.Errorf("unbalanced predicate in step %q", s)
		}
		predSrc := name[open+1 : closeIdx]
		name = name[:open] + name[closeIdx+1:]
		eq := strings.IndexByte(predSrc, '=')
		if eq < 0 {
			return st, fmt.Errorf("predicate %q must be attr=\"value\"", predSrc)
		}
		attr := strings.TrimSpace(predSrc[:eq])
		val := strings.TrimSpace(predSrc[eq+1:])
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return st, fmt.Errorf("predicate value %q must be double-quoted", val)
		}
		st.preds = append(st.preds, pred{attr: attr, value: val[1 : len(val)-1]})
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return st, fmt.Errorf("step %q missing node type", s)
	}
	st.nodeType = name
	return st, nil
}

// String returns the source expression.
func (x *XPath) String() string { return x.src }

func (st step) matches(n *config.Node) bool {
	if n.Type != st.nodeType {
		return false
	}
	for _, p := range st.preds {
		if n.Attr(p.attr) != p.value {
			return false
		}
	}
	return true
}

// Select returns the nodes of the tree matched by the expression, in
// tree order.
func (x *XPath) Select(root *config.Node) []*config.Node {
	var firstMatches []*config.Node
	if x.anywhere {
		root.Walk(func(n *config.Node) {
			if x.steps[0].matches(n) {
				firstMatches = append(firstMatches, n)
			}
		})
	} else {
		for _, c := range root.Children {
			if x.steps[0].matches(c) {
				firstMatches = append(firstMatches, c)
			}
		}
	}
	cur := firstMatches
	for _, st := range x.steps[1:] {
		var next []*config.Node
		for _, n := range cur {
			for _, c := range n.Children {
				if st.matches(c) {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}
