package objective

import (
	"strings"
	"testing"

	"github.com/aed-net/aed/internal/config"
)

func testTree(t *testing.T) *config.Node {
	t.Helper()
	texts := map[string]string{
		"A": `hostname A
router bgp 100
 neighbor B
access-list internal
 deny ip 3.0.0.0/16 any
 permit ip any any
`,
		"B": `hostname B
router bgp 100
 neighbor A
router ospf 10
 network 2.0.0.0/16
access-list internal
 deny ip 3.0.0.0/16 any
 permit ip any any
ip route 9.0.0.0/8 via A
`,
	}
	net, err := config.ParseNetwork(texts)
	if err != nil {
		t.Fatal(err)
	}
	return config.Tree(net)
}

func TestXPathAnywhere(t *testing.T) {
	tree := testTree(t)
	x, err := ParseXPath(`//PacketFilter[name="internal"]`)
	if err != nil {
		t.Fatal(err)
	}
	nodes := x.Select(tree)
	if len(nodes) != 2 {
		t.Fatalf("selected %d nodes, want 2", len(nodes))
	}
	for _, n := range nodes {
		if n.Type != config.NodePacketFilter || n.Attr("name") != "internal" {
			t.Errorf("wrong node selected: %s", n.Path())
		}
	}
}

func TestXPathChildSteps(t *testing.T) {
	tree := testTree(t)
	x, err := ParseXPath(`//Router[name="B"]/RoutingProcess[type="ospf"]/Origination`)
	if err != nil {
		t.Fatal(err)
	}
	nodes := x.Select(tree)
	if len(nodes) != 1 || nodes[0].Attr("prefix") != "2.0.0.0/16" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestXPathRootAnchored(t *testing.T) {
	tree := testTree(t)
	x, err := ParseXPath(`/Router`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(x.Select(tree)); got != 2 {
		t.Fatalf("selected %d routers, want 2", got)
	}
	// Root-anchored rule selection matches nothing (rules are deep).
	x2, _ := ParseXPath(`/Rule`)
	if got := len(x2.Select(tree)); got != 0 {
		t.Errorf("anchored /Rule should select nothing, got %d", got)
	}
}

func TestXPathMultiplePredicates(t *testing.T) {
	tree := testTree(t)
	x, err := ParseXPath(`//Rule[action="deny"][src="3.0.0.0/16"]`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(x.Select(tree)); got != 2 {
		t.Fatalf("selected %d deny rules, want 2", got)
	}
}

func TestXPathErrors(t *testing.T) {
	bad := []string{
		"",
		"Router",
		"//",
		"//Router[name=B]",
		"//Router[name]",
		"//Router[name=\"B\"",
		"//[name=\"B\"]",
	}
	for _, s := range bad {
		if _, err := ParseXPath(s); err == nil {
			t.Errorf("ParseXPath(%q) should fail", s)
		}
	}
}

func TestParseObjective(t *testing.T) {
	o, err := ParseOne(`EQUATE //PacketFilter GROUPBY name`)
	if err != nil {
		t.Fatal(err)
	}
	if o.Restriction != Equate || o.GroupBy != "name" || o.Weight != 1 {
		t.Errorf("parsed = %+v", o)
	}
	if o.String() != "EQUATE //PacketFilter GROUPBY name" {
		t.Errorf("String = %q", o.String())
	}
	o2, err := ParseOne(`NOMODIFY //Router[name="B"] WEIGHT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Weight != 10 {
		t.Error("weight not parsed")
	}
	if !strings.Contains(o2.String(), "WEIGHT 10") {
		t.Error("weight not rendered")
	}
}

func TestParseObjectiveErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB //Router",
		"NOMODIFY",
		"NOMODIFY Router",
		"NOMODIFY //Router GROUPBY",
		"NOMODIFY //Router WEIGHT x",
		"NOMODIFY //Router WEIGHT 0",
		"NOMODIFY //Router EXTRA",
	}
	for _, s := range bad {
		if _, err := ParseOne(s); err == nil {
			t.Errorf("ParseOne(%q) should fail", s)
		}
	}
}

func TestParseMulti(t *testing.T) {
	os, err := Parse(`# objectives
NOMODIFY //Router GROUPBY name
ELIMINATE //StaticRoute GROUPBY prefix
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(os) != 2 {
		t.Fatalf("parsed %d objectives", len(os))
	}
	if _, err := Parse("BOGUS //x"); err == nil {
		t.Error("bad file should fail with line info")
	}
}

func TestInstantiateGroupBy(t *testing.T) {
	tree := testTree(t)
	o, _ := ParseOne(`NOMODIFY //Router GROUPBY name`)
	insts := o.Instantiate(tree)
	if len(insts) != 2 {
		t.Fatalf("instances = %d, want 2 (one per router)", len(insts))
	}
	// Deterministic order by group key.
	if insts[0].Roots[0].Attr("name") != "A" || insts[1].Roots[0].Attr("name") != "B" {
		t.Error("instances should be sorted by group value")
	}
	for _, in := range insts {
		if in.Restriction != NoModify || in.Weight != 1 || len(in.Roots) != 1 {
			t.Errorf("bad instance: %+v", in)
		}
	}
}

func TestInstantiateNoGroup(t *testing.T) {
	tree := testTree(t)
	o, _ := ParseOne(`EQUATE //PacketFilter`)
	insts := o.Instantiate(tree)
	if len(insts) != 1 || len(insts[0].Roots) != 2 {
		t.Fatalf("want one instance over both filters, got %+v", insts)
	}
}

func TestInstantiateEmptySelection(t *testing.T) {
	tree := testTree(t)
	o, _ := ParseOne(`NOMODIFY //Router[name="Z"]`)
	if insts := o.Instantiate(tree); insts != nil {
		t.Errorf("empty selection should instantiate to nil, got %v", insts)
	}
}

func TestInstantiateAll(t *testing.T) {
	tree := testTree(t)
	os, _ := Parse("NOMODIFY //Router GROUPBY name\nELIMINATE //StaticRoute\n")
	insts := InstantiateAll(os, tree)
	if len(insts) != 3 {
		t.Fatalf("instances = %d, want 3", len(insts))
	}
}

func TestLibrary(t *testing.T) {
	lib := Library()
	for _, name := range []string{"preserve-templates", "min-devices", "min-pfs", "avoid-static", "min-lines"} {
		if os, ok := lib[name]; !ok || len(os) == 0 {
			t.Errorf("library missing %q", name)
		}
	}
	if os, err := Named("min-devices"); err != nil || len(os) != 1 {
		t.Errorf("Named(min-devices) = %v, %v", os, err)
	}
	if _, err := Named("nope"); err == nil {
		t.Error("unknown name should error")
	}
	// preserve-templates must also cover potential (virtual) filters.
	found := false
	for _, o := range lib["preserve-templates"] {
		if o.Restriction == NoModify {
			found = true
		}
	}
	if !found {
		t.Error("preserve-templates should discourage new filters")
	}
}

func TestAvoidRouters(t *testing.T) {
	os := AvoidRouters("B", "C")
	if len(os) != 2 || os[0].Weight != 10 {
		t.Fatalf("AvoidRouters = %+v", os)
	}
	tree := testTree(t)
	insts := os[0].Instantiate(tree)
	if len(insts) != 1 || insts[0].Roots[0].Attr("name") != "B" {
		t.Error("AvoidRouters should select router B")
	}
}

func TestTableTwoEncodings(t *testing.T) {
	// Every Table-2 objective must parse and instantiate on a tree
	// containing the relevant constructs.
	tree := testTree(t)
	rows := []string{
		`EQUATE //PacketFilter GROUPBY name`,
		`NOMODIFY //Router GROUPBY name`,
		`NOMODIFY //Router[name="B"]`,
		`ELIMINATE //StaticRoute GROUPBY prefix`,
	}
	for _, row := range rows {
		o, err := ParseOne(row)
		if err != nil {
			t.Fatalf("%q: %v", row, err)
		}
		if insts := o.Instantiate(tree); len(insts) == 0 {
			t.Errorf("%q selected nothing", row)
		}
	}
}
