package aed_test

import (
	"context"
	"fmt"
	"log"

	"github.com/aed-net/aed"
)

// ExampleDo synthesizes a blocking policy on a three-router line
// topology with every input as one serializable value. The same
// aed.Request can be POSTed unchanged to an aedd service (or passed to
// the aed/client package) — Do is its in-process twin.
func ExampleDo() {
	req := aed.Request{
		Configs: map[string]string{
			"r0": "hostname r0\ninterface eth-r1\nrouter ospf 10\n network 10.0.0.0/24\n neighbor r1\n",
			"r1": "hostname r1\ninterface eth-r0\ninterface eth-r2\nrouter ospf 10\n neighbor r0\n neighbor r2\n",
			"r2": "hostname r2\ninterface eth-r1\nrouter ospf 10\n network 10.1.0.0/24\n neighbor r1\n",
		},
		Topology: `router r0 edge
router r1 core
router r2 edge
link r0 r1
link r1 r2
subnet r0 10.0.0.0/24
subnet r2 10.1.0.0/24
`,
		Policies: `block 10.0.0.0/24 -> 10.1.0.0/24
reach 10.1.0.0/24 -> 10.0.0.0/24
`,
		ObjectiveSet: "min-devices",
		Options:      aed.SolveOptions{Sequential: true, MinimizeLines: true},
	}

	resp, err := aed.Do(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d destinations solved, %d device(s) changed\n",
		len(resp.Instances), resp.DevicesChanged)
	for _, e := range resp.Edits {
		fmt.Println("edit:", e)
	}
	// Output:
	// 2 destinations solved, 1 device(s) changed
	// edit: rm-origination r2 ospf 10.1.0.0/24
}
