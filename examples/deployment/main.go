// Deployment example: synthesize an update, then roll it out safely.
//
// The paper defers deployment to future work (§11): pushing a large
// update to many devices at once can create transient loops and black
// holes even when the final state is correct. This example synthesizes
// a repair that touches several devices and asks the planner for a
// per-device order in which no intermediate state breaks a policy that
// the initial and final states both satisfy.
//
// Run with: go run ./examples/deployment
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/aed-net/aed"
	"github.com/aed-net/aed/internal/config"
	"github.com/aed-net/aed/internal/configgen"
	"github.com/aed-net/aed/internal/topology"
)

func main() {
	// A 4-router chain; the destination-side router lost its subnet
	// origination (say, a botched previous change), so one direction
	// is dark while the reverse still works.
	topo := topology.Line(4)
	net := configgen.Generate(topo, configgen.Options{Protocol: config.OSPF})
	net.Routers["r3"].Process(config.OSPF).Originations = nil

	ps, err := aed.ParsePolicies(`reach 10.0.0.0/24 -> 10.1.0.0/24
reach 10.1.0.0/24 -> 10.0.0.0/24
`)
	if err != nil {
		log.Fatal(err)
	}

	opts := aed.DefaultOptions()
	opts.MinimizeLines = true
	res, err := aed.SynthesizeContext(context.Background(), net, topo, ps, opts)
	if err != nil {
		log.Fatal(err)
	}
	if u := res.Unsat(); u != nil {
		log.Fatal(u)
	}
	fmt.Printf("synthesized %d edit(s) across %d device(s):\n",
		len(res.Edits), res.Diff.DevicesChanged)
	for _, e := range res.Edits {
		fmt.Println("  edit:", e)
	}

	plan := aed.PlanDeployment(net, topo, res.Edits, ps)
	fmt.Println("\nrollout order:")
	fmt.Print(plan.String())
	if !plan.Safe {
		log.Fatal("no transient-safe order found")
	}
}
