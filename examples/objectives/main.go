// Objective-language tour: express custom management objectives with
// restrictions, XPath selection, GROUPBY, and weights (paper §7.1,
// Table 2).
//
// Scenario: a WAN operator must open reachability to a new service
// subnet. Two routers ("r2", "r5") have flaky flash storage, so
// changing them is risky; the operator also bans static routes.
//
// Run with: go run ./examples/objectives
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/aed-net/aed"
	"github.com/aed-net/aed/internal/config"
	"github.com/aed-net/aed/internal/configgen"
	"github.com/aed-net/aed/internal/topology"
)

func main() {
	topo := topology.Zoo(8, 4)
	net := configgen.Generate(topo, configgen.Options{Protocol: config.BGP})

	// Filter all routes to 10.6.0.0/24 at every adjacency, so the new
	// service subnet is dark today.
	for _, r := range net.Routers {
		f := &config.RouteFilter{Name: "dark"}
		p, _ := aed.ParsePrefix("10.6.0.0/24")
		f.Rules = append(f.Rules,
			&config.RouteRule{Permit: false, Prefix: p},
			&config.RouteRule{Permit: true}) // permit everything else
		r.RouteFilters = append(r.RouteFilters, f)
		for _, proc := range r.Processes {
			for _, adj := range proc.Adjacencies {
				adj.InFilter = "dark"
			}
		}
	}

	// New requirement: one office must reach the service subnet.
	ps, err := aed.ParsePolicies("reach 10.0.0.0/24 -> 10.6.0.0/24\n")
	if err != nil {
		log.Fatal(err)
	}

	// Custom objectives, straight from the language:
	//   - avoid the two fragile routers, strongly weighted;
	//   - never introduce static routes;
	//   - otherwise touch as few devices as possible.
	objs, err := aed.ParseObjectives(`
NOMODIFY //Router[name="r2"] WEIGHT 10
NOMODIFY //Router[name="r5"] WEIGHT 10
NOMODIFY //StaticRoute[virtual="true"] GROUPBY prefix WEIGHT 5
NOMODIFY //Router GROUPBY name
`)
	if err != nil {
		log.Fatal(err)
	}
	opts := aed.DefaultOptions()
	opts.Objectives = objs

	res, err := aed.SynthesizeContext(context.Background(), net, topo, ps, opts)
	if err != nil {
		log.Fatal(err)
	}
	if u := res.Unsat(); u != nil {
		log.Fatal(u)
	}
	fmt.Printf("solved in %v; %d device(s) changed\n",
		res.Duration.Round(1e6), res.Diff.DevicesChanged)
	for _, e := range res.Edits {
		fmt.Println("  edit:", e)
	}
	for name, lines := range res.Diff.PerDevice {
		if name == "r2" || name == "r5" {
			fmt.Printf("  WARNING: fragile router %s was modified (%d lines)\n", name, lines)
		}
	}
	for _, r := range res.Updated.Routers {
		if len(r.StaticRoutes) > 0 {
			fmt.Printf("  WARNING: %s now has static routes\n", r.Name)
		}
	}
	if vs := aed.Check(res.Updated, topo, ps); len(vs) != 0 {
		log.Fatalf("violations: %v", vs)
	}
	fmt.Println("policy verified; fragile routers untouched, no static routes")
}
