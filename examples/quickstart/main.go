// Quickstart: synthesize a blocking policy on a three-router network
// and print the resulting configuration updates.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/aed-net/aed"
)

func main() {
	// Physical topology: r0 - r1 - r2, hosts on r0 and r2.
	topo := aed.NewTopology("quickstart")
	topo.AddRouter("r0", "edge")
	topo.AddRouter("r1", "core")
	topo.AddRouter("r2", "edge")
	topo.AddLink("r0", "r1")
	topo.AddLink("r1", "r2")
	mustSubnet(topo, "r0", "10.0.0.0/24")
	mustSubnet(topo, "r2", "10.1.0.0/24")

	// Current configurations: plain OSPF everywhere; both subnets can
	// talk today.
	net, err := aed.ParseConfigs(map[string]string{
		"r0": `hostname r0
interface eth-r1
router ospf 10
 network 10.0.0.0/24
 neighbor r1
`,
		"r1": `hostname r1
interface eth-r0
interface eth-r2
router ospf 10
 neighbor r0
 neighbor r2
`,
		"r2": `hostname r2
interface eth-r1
router ospf 10
 network 10.1.0.0/24
 neighbor r2-unused
`,
	})
	if err != nil {
		// The deliberate typo above ("r2-unused") demonstrates config
		// validation; fix it and continue.
		log.Printf("validation caught: %v", err)
		net, err = aed.ParseConfigs(map[string]string{
			"r0": "hostname r0\ninterface eth-r1\nrouter ospf 10\n network 10.0.0.0/24\n neighbor r1\n",
			"r1": "hostname r1\ninterface eth-r0\ninterface eth-r2\nrouter ospf 10\n neighbor r0\n neighbor r2\n",
			"r2": "hostname r2\ninterface eth-r1\nrouter ospf 10\n network 10.1.0.0/24\n neighbor r1\n",
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The new requirement: block 10.0.0.0/24 from reaching 10.1.0.0/24
	// — while keeping the reverse direction working.
	ps, err := aed.ParsePolicies(`block 10.0.0.0/24 -> 10.1.0.0/24
reach 10.1.0.0/24 -> 10.0.0.0/24
`)
	if err != nil {
		log.Fatal(err)
	}

	// Management objective: touch as few devices as possible.
	objs, err := aed.NamedObjectives("min-devices")
	if err != nil {
		log.Fatal(err)
	}
	opts := aed.DefaultOptions()
	opts.Objectives = objs

	res, err := aed.SynthesizeContext(context.Background(), net, topo, ps, opts)
	if err != nil {
		log.Fatal(err)
	}
	if u := res.Unsat(); u != nil {
		log.Fatalf("policies unimplementable for destinations %v", u.Destinations)
	}

	fmt.Printf("solved in %v; %d device(s), %d line(s) changed\n",
		res.Duration.Round(1e6), res.Diff.DevicesChanged, res.Diff.LinesChanged())
	for _, e := range res.Edits {
		fmt.Println("  edit:", e)
	}
	if vs := aed.Check(res.Updated, topo, ps); len(vs) != 0 {
		log.Fatalf("simulator found violations: %v", vs)
	}
	fmt.Println("independent simulator check: all policies hold")

	fmt.Println("\nupdated configuration of the changed device(s):")
	for name, text := range aed.PrintConfigs(res.Updated) {
		if res.Diff.PerDevice[name] > 0 {
			fmt.Printf("----- %s -----\n%s", name, text)
		}
	}
}

func mustSubnet(topo *aed.Topology, router, p string) {
	pfx, err := aed.ParsePrefix(p)
	if err != nil {
		log.Fatal(err)
	}
	topo.AddSubnet(router, pfx)
}
