// Waypoint example: steer traffic through an inspection device.
//
// The paper's Figure-1 diamond: A at the top, B and C in the middle,
// D at the bottom. Hosts behind A must reach hosts behind D, but the
// security team requires that traffic to pass through C (say, C hosts
// an inspection function), and the fallback path through B may only be
// used when C is down (a path-preference policy).
//
// Run with: go run ./examples/waypoint
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/aed-net/aed"
	"github.com/aed-net/aed/internal/config"
	"github.com/aed-net/aed/internal/configgen"
	"github.com/aed-net/aed/internal/simulate"
	"github.com/aed-net/aed/internal/topology"
)

func main() {
	topo := topology.Diamond() // A-B, A-C, B-D, C-D, B-C
	net := configgen.Generate(topo, configgen.Options{Protocol: config.BGP})

	before := simulate.New(net, topo)
	src, _ := aed.ParsePrefix("1.0.0.0/16")
	dst, _ := aed.ParsePrefix("3.0.0.0/16")
	path, _ := before.Path(src, dst)
	fmt.Printf("current path 1.0.0.0/16 -> 3.0.0.0/16: %v\n", path)

	ps := []aed.Policy{{
		Kind:  aed.PathPreference,
		Src:   src,
		Dst:   dst,
		Via:   "C",
		Avoid: "B",
	}}

	objs, err := aed.NamedObjectives("min-devices")
	if err != nil {
		log.Fatal(err)
	}
	opts := aed.DefaultOptions()
	opts.Objectives = objs
	res, err := aed.SynthesizeContext(context.Background(), net, topo, ps, opts)
	if err != nil {
		log.Fatal(err)
	}
	if u := res.Unsat(); u != nil {
		log.Fatalf("path preference unimplementable: %v", u)
	}
	fmt.Printf("synthesized in %v with %d edit(s):\n", res.Duration.Round(1e6), len(res.Edits))
	for _, e := range res.Edits {
		fmt.Println("  edit:", e)
	}

	after := simulate.New(res.Updated, topo)
	path, _ = after.Path(src, dst)
	fmt.Printf("new primary path: %v\n", path)

	// Fail C and confirm the fallback engages through B.
	failed := simulate.New(res.Updated, topo)
	failed.DisabledRouters["C"] = true
	path, status := failed.Path(src, dst)
	fmt.Printf("path with C down: %v (%v)\n", path, status)

	if vs := aed.Check(res.Updated, topo, ps); len(vs) != 0 {
		log.Fatalf("violations: %v", vs)
	}
	fmt.Println("policy verified by the simulator, including the failure case")
}
