// Datacenter example: preserve role templates while rolling out a
// security policy on a leaf–spine fabric.
//
// Every leaf shares the same packet-filter template (copied verbatim,
// as operators do, §3.1 of the paper). A naive update that installs a
// deny rule on just one leaf breaks the role similarity operators rate
// as their most important management factor. With the
// preserve-templates objective, AED keeps every same-role filter
// identical.
//
// Run with: go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/aed-net/aed"
	"github.com/aed-net/aed/internal/config"
	"github.com/aed-net/aed/internal/configgen"
	"github.com/aed-net/aed/internal/topology"
)

func main() {
	// A 4-leaf, 2-spine fabric, one host subnet per rack, with
	// role-templated packet filters on every leaf and spine.
	topo := topology.LeafSpine(4, 2, 1)
	net := configgen.Generate(topo, configgen.Options{
		Protocol:        config.OSPF,
		WithRoleFilters: true,
	})

	// Keep the fabric's current any-to-any reachability, except the
	// pair the security team wants isolated.
	base := aed.InferReachability(net, topo)
	ps, err := aed.ParsePolicies("block 10.0.0.0/24 -> 10.2.0.0/24\n")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range base {
		if p.Src.String() == "10.0.0.0/24" && p.Dst.String() == "10.2.0.0/24" {
			continue
		}
		ps = append(ps, p)
	}

	run := func(label string, objNames ...string) *aed.Result {
		opts := aed.DefaultOptions()
		// Always keep the update small; the named objectives add the
		// structural preferences on top.
		opts.MinimizeLines = true
		for _, n := range objNames {
			objs, err := aed.NamedObjectives(n)
			if err != nil {
				log.Fatal(err)
			}
			opts.Objectives = append(opts.Objectives, objs...)
		}
		res, err := aed.SynthesizeContext(context.Background(), net, topo, ps, opts)
		if err != nil {
			log.Fatal(err)
		}
		if u := res.Unsat(); u != nil {
			log.Fatalf("%s: %v", label, u)
		}
		violations := config.TemplateViolations(net, res.Updated)
		fmt.Printf("%-28s devices=%d lines=%d template-violations=%d\n",
			label, res.Diff.DevicesChanged, res.Diff.LinesChanged(), violations)
		return res
	}

	fmt.Println("blocking 10.0.0.0/24 -> 10.2.0.0/24 on a 6-router fabric:")
	run("min-devices only:", "min-devices")
	res := run("preserve-templates:", "preserve-templates")

	fmt.Println("\nwith preserve-templates, the deny rule lands on every")
	fmt.Println("same-role filter so rack configurations stay identical:")
	for _, e := range res.Edits {
		fmt.Println("  edit:", e)
	}
}
