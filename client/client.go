// Package client is the Go client for an aedd synthesis service.
//
// It speaks the same Request/Response pair as the in-process aed.Do
// call, so moving a caller from the library to a service is a
// one-line change:
//
//	resp, err := aed.Do(ctx, req)            // in process
//	cl := client.New("http://aedd:7070")
//	resp, err := cl.Do(ctx, req)             // over the wire
//
// The error taxonomy survives the round-trip: errors.Is matches the
// aed sentinels (aed.ErrQueueFull, aed.ErrBudgetExceeded,
// aed.ErrSessionNotFound, aed.ErrInvalidRequest, aed.ErrDraining) and
// the context errors, and errors.As recovers *aed.UnsatError with its
// per-destination conflict detail — exactly as a library call reports
// them. See docs/SERVICE.md for the wire contract.
package client

import (
	"context"
	"net/http"

	"github.com/aed-net/aed"
	"github.com/aed-net/aed/internal/api"
)

// Client talks to one aedd service. Create with New; the zero value is
// not usable.
type Client struct {
	c api.Client
}

// Option configures a Client.
type Option func(*Client)

// WithTenant stamps every request that doesn't name a tenant itself.
// Tenants scope server-side solve budgets and session names.
func WithTenant(tenant string) Option {
	return func(c *Client) { c.c.Tenant = tenant }
}

// WithHTTPClient substitutes the transport (default
// http.DefaultClient).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.c.HTTP = h }
}

// New returns a client for the service rooted at base, e.g.
// "http://127.0.0.1:7070".
func New(base string, opts ...Option) *Client {
	c := &Client{c: api.Client{Base: base}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Do submits one synthesis request (POST /v1/solve) and returns the
// decoded response. Set req.Session to solve on a named server-side
// incremental session; leave it empty for a one-shot solve. When
// req.TimeoutMS is unset and ctx carries a deadline, the remaining
// time is forwarded so the server-side solve honours it too.
func (c *Client) Do(ctx context.Context, req aed.Request) (*aed.Response, error) {
	return c.c.Do(ctx, &req)
}

// SessionInfo describes one live server-side session.
type SessionInfo = api.SessionInfo

// Sessions lists the live sessions held by the service.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	return c.c.Sessions(ctx)
}

// DropSession deletes a named session belonging to the client's
// tenant. errors.Is(err, aed.ErrSessionNotFound) reports an unknown
// name.
func (c *Client) DropSession(ctx context.Context, session string) error {
	return c.c.DropSession(ctx, session)
}

// Counters fetches the service's counter metrics from /metrics, e.g.
// "session.cache.hits" or "aedd.rejected.queue_full".
func (c *Client) Counters(ctx context.Context) (map[string]int64, error) {
	return c.c.Counters(ctx)
}

// Health probes /healthz; nil means the service is accepting
// requests.
func (c *Client) Health(ctx context.Context) error {
	return c.c.Health(ctx)
}
