module github.com/aed-net/aed

go 1.22
