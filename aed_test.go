package aed

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// lab builds a three-router line network through the public API.
func lab(t *testing.T) (*Network, *Topology) {
	t.Helper()
	topo := NewTopology("lab")
	topo.AddRouter("r0", "edge")
	topo.AddRouter("r1", "core")
	topo.AddRouter("r2", "edge")
	topo.AddLink("r0", "r1")
	topo.AddLink("r1", "r2")
	src, _ := ParsePrefix("10.0.0.0/24")
	dst, _ := ParsePrefix("10.1.0.0/24")
	topo.AddSubnet("r0", src)
	topo.AddSubnet("r2", dst)

	texts := map[string]string{
		"r0": `hostname r0
interface eth-r1
router ospf 10
 network 10.0.0.0/24
 neighbor r1
`,
		"r1": `hostname r1
interface eth-r0
interface eth-r2
router ospf 10
 neighbor r0
 neighbor r2
`,
		"r2": `hostname r2
interface eth-r1
router ospf 10
 network 10.1.0.0/24
 neighbor r1
`,
	}
	net, err := ParseConfigs(texts)
	if err != nil {
		t.Fatal(err)
	}
	return net, topo
}

func TestPublicAPISynthesize(t *testing.T) {
	net, topo := lab(t)
	ps, err := ParsePolicies("block 10.0.0.0/24 -> 10.1.0.0/24\n")
	if err != nil {
		t.Fatal(err)
	}
	objs, err := NamedObjectives("min-devices")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Objectives = objs
	res, err := SynthesizeContext(context.Background(), net, topo, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat() != nil {
		t.Fatal("unsat")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(Check(res.Updated, topo, ps)) != 0 {
		t.Fatal("public Check disagrees")
	}
	if d := Diff(net, res.Updated); d.DevicesChanged == 0 {
		t.Error("expected changes")
	}
	printed := PrintConfigs(res.Updated)
	if len(printed) != 3 {
		t.Error("expected 3 configs")
	}
}

func TestPublicAPIZeroOptions(t *testing.T) {
	net, topo := lab(t)
	ps, _ := ParsePolicies("reach 10.0.0.0/24 -> 10.1.0.0/24\n")
	// The zero value is the paper default; with the min-lines objective
	// a satisfied policy is a no-op. (The library no longer injects
	// MinimizeLines implicitly when no objectives are set.)
	res, err := SynthesizeContext(context.Background(), net, topo, ps, Options{MinimizeLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat() != nil || res.Diff.LinesChanged() != 0 {
		t.Error("min-lines synthesis on a satisfied policy should be a no-op")
	}
	if res.Unsat() != nil {
		t.Errorf("Unsat() should be nil on success, got %v", res.Unsat())
	}
}

// TestZeroOptionsIsDefault pins the Options redesign contract: the
// zero value IS the paper default, field by field.
func TestZeroOptionsIsDefault(t *testing.T) {
	def := reflect.ValueOf(DefaultOptions())
	zero := reflect.ValueOf(Options{})
	typ := def.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		t.Run(name, func(t *testing.T) {
			d, z := def.Field(i), zero.Field(i)
			if !reflect.DeepEqual(d.Interface(), z.Interface()) {
				t.Errorf("DefaultOptions().%s = %v, zero value = %v — the zero value must be the default",
					name, d.Interface(), z.Interface())
			}
			if !d.IsZero() {
				t.Errorf("DefaultOptions().%s = %v is not the zero value of its type",
					name, d.Interface())
			}
		})
	}
	if !reflect.DeepEqual(DefaultOptions(), Options{}) {
		t.Error("DefaultOptions() != Options{}")
	}
	if s := LinearDescent; int(s) != 0 {
		t.Error("LinearDescent must be the zero Strategy")
	}
}

func TestPublicAPISession(t *testing.T) {
	net, topo := lab(t)
	ps, _ := ParsePolicies("block 10.0.0.0/24 -> 10.1.0.0/24\n")
	sess := NewSession(net, topo, Options{MinimizeLines: true})
	res, err := sess.Solve(context.Background(), ps)
	if err != nil || res.Unsat() != nil {
		t.Fatalf("session solve: err=%v", err)
	}
	warm, err := sess.Solve(context.Background(), ps)
	if err != nil || warm.Unsat() != nil {
		t.Fatalf("warm session solve: err=%v", err)
	}
	for _, in := range warm.Instances {
		if !in.Cached {
			t.Errorf("identical warm solve re-solved %s", in.Destination)
		}
	}
}

func TestPublicAPISynthesizeContext(t *testing.T) {
	net, topo := lab(t)
	ps, _ := ParsePolicies("block 10.0.0.0/24 -> 10.1.0.0/24\n")
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := SynthesizeContext(ctx, net, topo, ps, Options{}); err == nil {
		t.Fatal("expired context must abort synthesis")
	}
}

func TestPublicAPIInfer(t *testing.T) {
	net, topo := lab(t)
	ps := InferReachability(net, topo)
	if len(ps) != 2 {
		t.Fatalf("inferred %d policies, want 2", len(ps))
	}
}

func TestPublicAPIObjectives(t *testing.T) {
	objs, err := ParseObjectives(`NOMODIFY //Router[name="r1"]
ELIMINATE //StaticRoute GROUPBY prefix
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatal("want 2 objectives")
	}
	if !strings.Contains(objs[0].String(), "NOMODIFY") {
		t.Error("String rendering broken")
	}
}

func TestPublicAPIPlanDeployment(t *testing.T) {
	net, topo := lab(t)
	ps, _ := ParsePolicies("block 10.0.0.0/24 -> 10.1.0.0/24\nreach 10.1.0.0/24 -> 10.0.0.0/24\n")
	opts := DefaultOptions()
	opts.MinimizeLines = true
	res, err := SynthesizeContext(context.Background(), net, topo, ps, opts)
	if err != nil || res.Unsat() != nil {
		t.Fatal("synthesis failed")
	}
	plan := PlanDeployment(net, topo, res.Edits, ps)
	if !plan.Safe || len(plan.Steps) == 0 {
		t.Fatalf("plan: %s", plan)
	}
}

// TestPublicAPIBinaryTrace pins the binary-trace surface: a tracer
// exported with WriteTraceBinary decodes via ReadTraceAuto to the same
// analysis the JSONL path yields.
func TestPublicAPIBinaryTrace(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("synthesize")
	sp.SetInt("destinations", 2)
	sp.End()

	var jbuf, bbuf bytes.Buffer
	if err := WriteTrace(&jbuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceBinary(&bbuf, tr); err != nil {
		t.Fatal(err)
	}
	if bbuf.Len() >= jbuf.Len() {
		t.Errorf("binary trace (%d bytes) not smaller than JSONL (%d bytes)", bbuf.Len(), jbuf.Len())
	}
	jEvents, err := ReadTraceAuto(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bEvents, err := ReadTraceAuto(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	jp, bp := AnalyzeTrace(jEvents).Phases(), AnalyzeTrace(bEvents).Phases()
	if !reflect.DeepEqual(jp, bp) {
		t.Errorf("phase tables differ across formats:\njsonl:  %+v\nbinary: %+v", jp, bp)
	}
}

func TestPublicAPIParseConfigRoundTrip(t *testing.T) {
	r, err := ParseConfig("hostname x\nrouter bgp 65000\n network 10.0.0.0/24\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "x" {
		t.Error("parse failed")
	}
}
