package aed

// One testing.B benchmark per evaluation table/figure (DESIGN.md §4).
// Each benchmark drives the same workload as the corresponding
// internal/bench driver at Quick scale and reports the headline metric
// through b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the paper's rows. cmd/aedbench prints the full tables (use
// `-scale full` for paper-scale sweeps).

import (
	"io"
	"testing"

	"github.com/aed-net/aed/internal/bench"
)

func BenchmarkFig3Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3(io.Discard)
	}
}

func BenchmarkFig9ChangeFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Fig9(io.Discard, bench.Quick)
		for _, row := range res.DC {
			if row.Tool == "aed(min-devices)" {
				b.ReportMetric(row.PctDevices, "aed-%devices")
			}
			if row.Tool == "manual" {
				b.ReportMetric(row.PctDevices, "manual-%devices")
			}
		}
	}
}

func BenchmarkFig10FilterObjectives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig10(io.Discard, bench.Quick)
		for _, row := range rows {
			if row.Tool == "aed" {
				b.ReportMetric(row.TemplateViolationsPct, "aed-%violations")
			}
			if row.Tool == "cpr" {
				b.ReportMetric(row.TemplateViolationsPct, "cpr-%violations")
			}
		}
	}
}

func BenchmarkFig11aAEDvsCPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig11a(io.Discard, bench.Quick)
		if len(rows) > 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.AED.Milliseconds()), "aed-ms")
			b.ReportMetric(float64(last.CPR.Milliseconds()), "cpr-ms")
		}
	}
}

func BenchmarkFig11bAEDvsNetComplete(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig11b(io.Discard, bench.Quick)
		if len(rows) > 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Speedup, "speedup-x")
		}
	}
}

func BenchmarkFig12PolicyScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig12(io.Discard, bench.Quick)
		if len(rows) > 0 {
			b.ReportMetric(float64(rows[len(rows)-1].AED.Milliseconds()), "max-ms")
		}
	}
}

func BenchmarkFig13PolicyClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig13(io.Discard, bench.Quick)
		for _, row := range rows {
			if row.Class == "prefer" {
				b.ReportMetric(float64(row.AED.Milliseconds()), "prefer-ms")
			}
		}
	}
}

func BenchmarkFig14SplitVsJoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig14(io.Discard, bench.Quick)
		if len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-x")
		}
	}
}

func BenchmarkBoolRankEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.BoolRank(io.Discard, bench.Quick)
		if len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-x")
		}
	}
}

func BenchmarkPruningOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Pruning(io.Discard, bench.Quick)
		if len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-x")
		}
	}
}

// BenchmarkMaxSATStrategies compares the exact MaxSAT search
// strategies on the same workload (all find the same optimum; they
// differ only in search time — DESIGN.md §5 ablation 5).
func BenchmarkMaxSATStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.MaxSATStrategies(io.Discard, bench.Quick)
		for _, row := range rows {
			b.ReportMetric(float64(row.Time.Milliseconds()), row.Strategy+"-ms")
		}
	}
}

// BenchmarkAblationSketch measures the value of the delta sketch: AED
// (incremental, rank metrics, pruning) against the NetComplete-style
// unbiased configuration of the same encoder (DESIGN.md §5 ablation 1).
func BenchmarkAblationSketch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig11b(io.Discard, bench.Quick)
		var total float64
		for _, r := range rows {
			total += r.Speedup
		}
		if len(rows) > 0 {
			b.ReportMetric(total/float64(len(rows)), "avg-speedup-x")
		}
	}
}
