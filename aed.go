// Package aed is the public API of the AED configuration synthesizer —
// a from-scratch Go reproduction of "AED: Incrementally Synthesizing
// Policy-Compliant and Manageable Configurations" (CoNEXT 2020).
//
// AED takes a network's current router configurations, a set of
// forwarding policies, and a set of management objectives written in a
// small high-level language, and computes configuration updates that
// rectify policy violations while maximally satisfying the objectives.
//
// Quick start:
//
//	net, _ := aed.ParseConfigs(map[string]string{"r1": cfg1, "r2": cfg2})
//	topo := aed.NewTopology("lab")
//	// ... describe routers, links and subnets ...
//	ps, _ := aed.ParsePolicies("block 10.0.0.0/24 -> 10.1.0.0/24\n")
//	objs, _ := aed.ParseObjectives(`NOMODIFY //Router GROUPBY name`)
//	res, _ := aed.SynthesizeContext(ctx, net, topo, ps, aed.Options{Objectives: objs})
//	for name, text := range aed.PrintConfigs(res.Updated) { ... }
//
// Or, with every input as one serializable value (the same type the
// aedd service and the aed/client package accept over the wire):
//
//	resp, _ := aed.Do(ctx, aed.Request{
//		Configs:  map[string]string{"r1": cfg1, "r2": cfg2},
//		Topology: "router r1\nrouter r2\nlink r1 r2\n...",
//		Policies: "block 10.0.0.0/24 -> 10.1.0.0/24\n",
//	})
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory and paper-experiment index.
package aed

import (
	"context"
	"io"

	"github.com/aed-net/aed/internal/config"
	"github.com/aed-net/aed/internal/core"
	"github.com/aed-net/aed/internal/deploy"
	"github.com/aed-net/aed/internal/encode"
	"github.com/aed-net/aed/internal/objective"
	"github.com/aed-net/aed/internal/obs"
	"github.com/aed-net/aed/internal/policy"
	"github.com/aed-net/aed/internal/prefix"
	"github.com/aed-net/aed/internal/sat"
	"github.com/aed-net/aed/internal/simulate"
	"github.com/aed-net/aed/internal/smt"
	"github.com/aed-net/aed/internal/topology"
)

// Re-exported model types. The internal packages carry the full API;
// these aliases are the stable public surface.
type (
	// Network is a parsed set of router configurations.
	Network = config.Network
	// Router is one device's configuration.
	Router = config.Router
	// Topology is the physical network graph.
	Topology = topology.Topology
	// Policy is one forwarding policy.
	Policy = policy.Policy
	// Objective is one management objective.
	Objective = objective.Objective
	// Prefix is an IPv4 prefix.
	Prefix = prefix.Prefix
	// Result is a synthesis outcome.
	Result = core.Result
	// Options configures synthesis.
	Options = core.Options
	// Edit is one extracted configuration change.
	Edit = encode.Edit
	// Violation is a policy the configurations do not satisfy.
	Violation = simulate.Violation
	// DiffStats summarizes configuration changes.
	DiffStats = config.DiffStats
)

// Policy kinds.
const (
	Reachability   = policy.Reachability
	Blocking       = policy.Blocking
	Waypoint       = policy.Waypoint
	PathPreference = policy.PathPreference
	Isolation      = policy.Isolation
	PathLength     = policy.PathLength
)

// MaxSAT strategies for Options.Strategy.
const (
	LinearDescent = smt.LinearDescent
	BinarySearch  = smt.BinarySearch
	CoreGuided    = smt.CoreGuided
)

// SynthesizeContext computes configuration updates for net on topo
// that satisfy ps and maximally satisfy the objectives in opts, with
// cancellation: once ctx is canceled (or its deadline passes) every
// in-flight CDCL search stops at its next conflict and the call
// returns ctx.Err().
//
// For a fully serializable entry point — the one the aedd service and
// the aed/client package share — see Do and the Request/Response pair.
func SynthesizeContext(ctx context.Context, net *Network, topo *Topology, ps []Policy, opts Options) (*Result, error) {
	return core.SynthesizeContext(ctx, net, topo, ps, opts)
}

// DefaultOptions returns the paper's fully optimized configuration
// (per-destination parallel solving, pruning, boolean rank metrics,
// simulator validation). Since the Options redesign the zero value IS
// the paper default, so this is a documented alias for Options{}.
func DefaultOptions() Options { return core.DefaultOptions() }

// Session is an incremental synthesis engine: it holds the parsed
// network and topology and, across successive Solve calls, re-solves
// only the destinations whose policies, relevant configuration
// subtree, or objectives changed, reusing cached results for the rest.
// Use it for the operator loop the paper targets — edit, re-run,
// repeat — where most of the network is unchanged between runs.
//
//	sess := aed.NewSession(net, topo, aed.Options{Objectives: objs})
//	res, err := sess.Solve(ctx, ps)        // cold: solves everything
//	res, err = sess.Solve(ctx, editedPs)   // warm: only dirty destinations
type Session = core.Engine

// NewSession starts an incremental synthesis session; opts apply to
// every subsequent Solve call.
func NewSession(net *Network, topo *Topology, opts Options) *Session {
	return core.NewEngine(net, topo, opts)
}

// UnsatError is the structured unsatisfiability report returned by
// (*Result).Unsat, keyed by destination prefix.
type UnsatError = core.UnsatError

// ParseConfigs parses router configurations keyed by a label (e.g.
// file name) and validates cross-references.
func ParseConfigs(texts map[string]string) (*Network, error) {
	return config.ParseNetwork(texts)
}

// ParseConfig parses a single router configuration.
func ParseConfig(text string) (*Router, error) { return config.Parse(text) }

// PrintConfigs renders every router's canonical configuration text.
func PrintConfigs(net *Network) map[string]string { return config.PrintNetwork(net) }

// Diff summarizes the structural difference between two snapshots.
func Diff(before, after *Network) *DiffStats { return config.Diff(before, after) }

// ParsePolicies parses a policy file (one policy per line; see the
// policy package for the grammar).
func ParsePolicies(text string) ([]Policy, error) { return policy.Parse(text) }

// ParseObjectives parses an objective file (one objective per line:
// RESTRICTION xpath [GROUPBY attr] [WEIGHT n]).
func ParseObjectives(text string) ([]Objective, error) { return objective.Parse(text) }

// NamedObjectives returns a predefined objective set from the library
// (Table 2 of the paper): preserve-templates, min-devices, min-pfs,
// avoid-static, min-lines.
func NamedObjectives(name string) ([]Objective, error) { return objective.Named(name) }

// NewTopology returns an empty topology to populate with AddRouter,
// AddLink, and AddSubnet.
func NewTopology(name string) *Topology { return topology.New(name) }

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) { return prefix.Parse(s) }

// Check evaluates policies against configurations on a topology using
// the concrete control-plane simulator, returning all violations.
func Check(net *Network, topo *Topology, ps []Policy) []Violation {
	return simulate.New(net, topo).CheckAll(ps)
}

// InferReachability computes the reachability policies that currently
// hold between every pair of subnets (the paper's Minesweeper-based
// policy inference).
func InferReachability(net *Network, topo *Topology) []Policy {
	return simulate.New(net, topo).InferReachability()
}

// Telemetry surface: a Tracer collects phase spans (parse → encode →
// solve → extract → validate) and solver metrics for a synthesis run.
// Set Options.Tracer to enable it; a nil tracer costs nothing.
type (
	// Tracer is the per-run telemetry collector.
	Tracer = obs.Tracer
	// Span is one timed pipeline phase.
	Span = obs.Span
	// TraceEvent is one exported JSONL telemetry record.
	TraceEvent = obs.Event
	// SolverStats are cumulative SAT-solver work counters.
	SolverStats = sat.Stats
	// InstanceStats describes one per-destination MaxSMT instance.
	InstanceStats = core.InstanceStats
)

// Flight-recorder and debug-endpoint surface.
type (
	// FlightRecorder is a fixed-capacity ring of solver events
	// (restarts, clause-database reductions, MaxSAT bound movements,
	// session cache activity) attached to a Tracer via SetRecorder.
	FlightRecorder = obs.Recorder
	// RecorderEvent is one drained flight-recorder entry.
	RecorderEvent = obs.RecorderEvent
	// Incident is a slow-solve watchdog snapshot (see
	// Options.SlowSolveAfter and Options.IncidentWriter).
	Incident = obs.Incident
	// TraceAnalysis is the offline view of a decoded trace: span tree,
	// per-phase aggregates, critical path (cmd/aedtrace's engine).
	TraceAnalysis = obs.Analysis
)

// NewTracer returns an enabled telemetry collector for Options.Tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewFlightRecorder returns a solver-event ring buffer holding the
// last capacity events (<=0 selects the default capacity).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewRecorder(capacity) }

// AnalyzeTrace reconstructs the span tree and per-phase timings from
// decoded trace events (ReadTrace output).
func AnalyzeTrace(events []TraceEvent) *TraceAnalysis { return obs.Analyze(events) }

// ServeDebug starts an HTTP debug endpoint on addr serving /metrics,
// /spans (including in-flight spans), /recorder, and /debug/pprof/ for
// the given tracer. It returns the bound address (useful with ":0")
// and a function that shuts the listener down.
func ServeDebug(addr string, t *Tracer) (string, func() error, error) {
	return obs.ServeDebug(addr, t)
}

// WriteTrace exports a tracer's spans and metrics as JSONL events.
func WriteTrace(w io.Writer, t *Tracer) error { return obs.WriteJSONL(w, t) }

// WriteTraceSummary renders a tracer's spans and metrics as a
// human-readable report.
func WriteTraceSummary(w io.Writer, t *Tracer) { obs.WriteSummary(w, t) }

// ReadTrace decodes a JSONL trace produced by WriteTrace.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// WriteTraceBinary exports a tracer's spans and metrics in the AEDT
// binary format — the columnar, CRC-checksummed container described in
// docs/OBSERVABILITY.md, ~8x smaller than the JSONL sink and decodable
// allocation-free at steady state. `aed -trace-out x.aedt` and
// `aedtrace` speak the same format.
func WriteTraceBinary(w io.Writer, t *Tracer) error { return obs.WriteAEDT(w, t) }

// ReadTraceAuto decodes a trace in either format — JSONL (WriteTrace)
// or AEDT binary (WriteTraceBinary) — detecting the format from the
// file magic. Both decoders are strict: truncated, corrupt, or
// mixed-format input returns an error rather than a partial trace.
func ReadTraceAuto(r io.Reader) ([]TraceEvent, error) { return obs.ReadEventsAuto(r) }

// DeploymentPlan is an ordered per-device rollout of synthesized
// edits, checked for transient policy violations.
type DeploymentPlan = deploy.Plan

// PlanDeployment orders the edits into per-device steps such that,
// where possible, no intermediate state violates a policy that both
// the initial and final configurations satisfy (the safe-deployment
// extension of the paper's §11 future work).
func PlanDeployment(net *Network, topo *Topology, edits []Edit, ps []Policy) *DeploymentPlan {
	return deploy.Build(net, topo, edits, ps)
}
